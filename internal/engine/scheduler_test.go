package engine

import (
	"bytes"
	"context"
	"errors"
	"sort"
	"testing"
	"time"

	"github.com/riveterdb/riveter/internal/catalog"
	"github.com/riveterdb/riveter/internal/expr"
	"github.com/riveterdb/riveter/internal/plan"
	"github.com/riveterdb/riveter/internal/vector"
)

// dagQuery builds a plan whose physical form has several independent
// pipelines: three filtered aggregations over emp, unioned, re-aggregated,
// and sorted. The three branch aggregations share no dependencies, so the
// DAG scheduler runs them concurrently.
func dagQuery(cat *catalog.Catalog) plan.Node {
	b := plan.NewBuilder(cat)
	part := func(lo, hi int64) *plan.Rel {
		e := b.Scan("emp", "id", "dept", "salary")
		return e.Filter(expr.And(
			expr.Ge(e.Col("id"), expr.Int(lo)),
			expr.Lt(e.Col("id"), expr.Int(hi)),
		)).Agg([]string{"dept"},
			plan.Sum(e.Col("salary"), "total"),
			plan.CountStar("n"))
	}
	u := part(0, 4000).Union(part(2000, 8000), part(5000, 10000))
	return u.Agg([]string{"dept"},
		plan.Sum(u.Col("total"), "grand"),
		plan.Sum(u.Col("n"), "rows")).
		Sort(plan.Asc("dept")).Node()
}

// runWith runs a plan with explicit scheduling options.
func runWith(t *testing.T, cat *catalog.Catalog, node plan.Node, opts Options) *ResultSet {
	t.Helper()
	pp := mustCompile(t, node, cat)
	ex := NewExecutor(pp, opts)
	res, err := ex.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestDAGMatchesSerialSchedule pins the scheduler equivalence property:
// the DAG schedule (MaxConcurrentPipelines=0) produces the same result as
// the compile-order serial schedule (MaxConcurrentPipelines=1) for every
// worker count.
func TestDAGMatchesSerialSchedule(t *testing.T) {
	cat := testDB(t)
	for _, node := range []plan.Node{complexQuery(cat), dagQuery(cat)} {
		for _, workers := range []int{1, 2, 4, 7} {
			serial := runWith(t, cat, node, Options{Workers: workers, MaxConcurrentPipelines: 1}).SortedKey()
			dag := runWith(t, cat, node, Options{Workers: workers, MaxConcurrentPipelines: 0}).SortedKey()
			if dag != serial {
				t.Errorf("workers=%d: DAG result differs from serial schedule", workers)
			}
		}
	}
}

// TestMaxConcurrentPipelinesCap verifies the cap is honored while the query
// still completes correctly.
func TestMaxConcurrentPipelinesCap(t *testing.T) {
	cat := testDB(t)
	node := dagQuery(cat)
	ref := runWith(t, cat, node, Options{Workers: 1, MaxConcurrentPipelines: 1}).SortedKey()
	for _, cap := range []int{2, 3} {
		got := runWith(t, cat, node, Options{Workers: 4, MaxConcurrentPipelines: cap}).SortedKey()
		if got != ref {
			t.Errorf("cap=%d: result differs", cap)
		}
	}
}

// TestProcessSuspendCapturesMultipleInFlight drives a process-level barrier
// into a DAG with several concurrently running pipelines and checks that the
// capture holds the whole in-flight set, that the set round-trips through
// SaveState/LoadState, and that the resumed run completes to the reference
// result.
func TestProcessSuspendCapturesMultipleInFlight(t *testing.T) {
	cat := testDB(t)
	node := dagQuery(cat)
	ref := runWith(t, cat, node, Options{Workers: 4}).SortedKey()

	pp := mustCompile(t, node, cat)
	ex := NewExecutor(pp, Options{
		Workers:     4,
		AutoSuspend: AutoSuspend{Kind: KindProcess, AtProcessedBytes: 1},
	})
	_, err := ex.Run(context.Background())
	if !errors.Is(err, ErrSuspended) {
		t.Fatalf("err = %v", err)
	}
	info := ex.Suspended()
	if info.Kind != KindProcess {
		t.Fatalf("kind = %v", info.Kind)
	}
	// The three branch aggregations are independent and launch together; an
	// immediate barrier must catch more than one of them mid-flight.
	if len(info.InFlight) < 2 {
		t.Fatalf("in-flight set = %+v, want >= 2 pipelines", info.InFlight)
	}
	if !sort.SliceIsSorted(info.InFlight, func(i, j int) bool {
		return info.InFlight[i].Pipeline < info.InFlight[j].Pipeline
	}) {
		t.Errorf("in-flight set not ascending: %+v", info.InFlight)
	}
	if info.Pipeline != info.InFlight[0].Pipeline || info.Cursor != info.InFlight[0].Cursor {
		t.Errorf("summary fields %d/%d do not match first in-flight %+v",
			info.Pipeline, info.Cursor, info.InFlight[0])
	}
	for _, f := range info.InFlight {
		if f.Workers < 1 {
			t.Errorf("in-flight pipeline %d captured no worker locals", f.Pipeline)
		}
		if c := pp.Pipelines[f.Pipeline].Source.MorselCount(); f.Cursor > c {
			t.Errorf("in-flight pipeline %d cursor %d exceeds %d morsels", f.Pipeline, f.Cursor, c)
		}
	}

	// Progress and cost-model inputs over the multi-pipeline capture.
	prog := ex.CurrentProgress()
	if len(prog.InFlight) != len(info.InFlight) {
		t.Errorf("progress in-flight %d, suspend info %d", len(prog.InFlight), len(info.InFlight))
	}
	if eta := prog.NextBreakerEta(); eta < 0 {
		t.Errorf("NextBreakerEta = %v", eta)
	}
	if d := prog.PipelineSuspendDiscard(); d < 0 {
		t.Errorf("PipelineSuspendDiscard = %v", d)
	}

	state := saveState(t, ex)
	pp2 := mustCompile(t, node, cat)
	ex2 := NewExecutor(pp2, Options{Workers: 4})
	loadState(t, ex2, state)
	res, err := ex2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.SortedKey() != ref {
		t.Error("result after multi-pipeline process suspend/resume differs")
	}
}

// TestRepeatedMidDAGSuspensions chains several process-level barriers at
// increasing progress thresholds through the DAG, resuming each time.
func TestRepeatedMidDAGSuspensions(t *testing.T) {
	cat := testDB(t)
	node := dagQuery(cat)
	ref := runWith(t, cat, node, Options{Workers: 4}).SortedKey()

	var state []byte
	for round := 0; round < 5; round++ {
		pp := mustCompile(t, node, cat)
		ex := NewExecutor(pp, Options{
			Workers:     4,
			AutoSuspend: AutoSuspend{Kind: KindProcess, AtProcessedBytes: int64(round+1) * 300_000},
		})
		if state != nil {
			loadState(t, ex, state)
		}
		res, err := ex.Run(context.Background())
		if err == nil {
			if res.SortedKey() != ref {
				t.Fatalf("round %d: completed result differs", round)
			}
			return
		}
		if !errors.Is(err, ErrSuspended) {
			t.Fatalf("round %d: err = %v", round, err)
		}
		state = saveState(t, ex)
	}
	pp := mustCompile(t, node, cat)
	ex := NewExecutor(pp, Options{Workers: 4})
	loadState(t, ex, state)
	res, err := ex.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.SortedKey() != ref {
		t.Error("result after repeated mid-DAG suspensions differs")
	}
}

// TestPipelineSuspendMidDAGDiscardsSiblings: a pipeline-level suspension in
// a DAG with concurrent pipelines quiesces the siblings, discards their
// partial progress, and still resumes to the correct result — under a
// different worker count, which is the point of the pipeline strategy.
func TestPipelineSuspendMidDAGDiscardsSiblings(t *testing.T) {
	cat := testDB(t)
	node := dagQuery(cat)
	ref := runWith(t, cat, node, Options{Workers: 4}).SortedKey()

	pp := mustCompile(t, node, cat)
	fired := false
	ex := NewExecutor(pp, Options{
		Workers: 4,
		OnBreaker: func(ev *BreakerEvent) BreakerAction {
			if !fired {
				fired = true
				return ActionSuspend
			}
			return ActionContinue
		},
	})
	_, err := ex.Run(context.Background())
	if !errors.Is(err, ErrSuspended) {
		t.Fatalf("err = %v", err)
	}
	info := ex.Suspended()
	if info.Kind != KindPipeline {
		t.Fatalf("kind = %v", info.Kind)
	}
	if len(info.InFlight) != 0 {
		t.Errorf("pipeline-level capture must not carry in-flight state, got %+v", info.InFlight)
	}
	state := saveState(t, ex)
	pp2 := mustCompile(t, node, cat)
	ex2 := NewExecutor(pp2, Options{Workers: 2}) // different worker count
	loadState(t, ex2, state)
	res, err := ex2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.SortedKey() != ref {
		t.Error("result after mid-DAG pipeline suspend/resume differs")
	}
}

// encodeStateV1 hand-writes the pre-DAG v1 state layout from a suspended
// executor, standing in for a checkpoint produced by an older build.
func encodeStateV1(t *testing.T, ex *Executor) []byte {
	t.Helper()
	ex.mu.Lock()
	defer ex.mu.Unlock()
	var buf writerBuffer
	enc := vector.NewEncoder(&buf)
	kind := ex.suspended.Kind
	enc.String(stateMagic)
	enc.Uvarint(stateVersionV1)
	enc.Uvarint(uint64(kind))
	enc.Uvarint(ex.pp.Fingerprint)

	var fl *inflightPipe
	var pipeElapsed time.Duration
	next := len(ex.pp.Pipelines)
	var cursor int64
	workers := ex.opts.Workers
	if kind == KindProcess {
		if len(ex.inflight) != 1 {
			t.Fatalf("v1 encoding needs exactly one in-flight pipeline, have %d", len(ex.inflight))
		}
		fl = ex.inflight[0]
		pipeElapsed = fl.elapsed
		next = fl.pi
		cursor = fl.cursor
		workers = len(fl.locals) // v1 wrote one local per worker
	} else {
		for i, d := range ex.done {
			if !d {
				next = i
				break
			}
		}
	}
	enc.Uvarint(uint64(workers))
	enc.Varint(int64(ex.elapsed))
	enc.Varint(int64(pipeElapsed))
	enc.Varint(ex.acct.ProcessedBytes())
	enc.Uvarint(uint64(len(ex.pp.Pipelines)))
	for i := range ex.pp.Pipelines {
		enc.Bool(ex.done[i])
		if ex.done[i] {
			enc.Varint(int64(ex.pipeTimes[i]))
		}
	}
	enc.Uvarint(uint64(next))
	enc.Uvarint(uint64(cursor))
	live := ex.livePipes()
	enc.Uvarint(uint64(len(live)))
	for _, pi := range live {
		enc.Uvarint(uint64(pi))
		if err := ex.pp.Pipelines[pi].Sink.SaveGlobal(enc); err != nil {
			t.Fatal(err)
		}
	}
	if kind == KindProcess {
		enc.Uvarint(uint64(len(fl.locals)))
		sink := ex.pp.Pipelines[fl.pi].Sink
		for _, ls := range fl.locals {
			if err := sink.SaveLocal(ls, enc); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := enc.Err(); err != nil {
		t.Fatal(err)
	}
	return buf.b
}

type writerBuffer struct{ b []byte }

func (w *writerBuffer) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// TestStateFormatV1PipelineLoads: a hand-written v1 pipeline-level state
// (what a pre-DAG build persisted) loads into the current executor and
// resumes to the correct result.
func TestStateFormatV1PipelineLoads(t *testing.T) {
	cat := testDB(t)
	node := complexQuery(cat)
	ref := runPlan(t, cat, node, 2).SortedKey()

	pp := mustCompile(t, node, cat)
	ex := NewExecutor(pp, Options{
		Workers: 2,
		OnBreaker: func(ev *BreakerEvent) BreakerAction {
			if ev.PipelineIdx == 0 {
				return ActionSuspend
			}
			return ActionContinue
		},
	})
	if _, err := ex.Run(context.Background()); !errors.Is(err, ErrSuspended) {
		t.Fatal(err)
	}
	v1 := encodeStateV1(t, ex)

	pp2 := mustCompile(t, node, cat)
	ex2 := NewExecutor(pp2, Options{Workers: 3}) // pipeline resumes are worker-flexible
	loadState(t, ex2, v1)
	res, err := ex2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.SortedKey() != ref {
		t.Error("result after v1 pipeline-state load differs")
	}
}

// TestStateFormatV1ProcessLoads: a hand-written v1 process-level state with
// its single in-flight pipeline loads and resumes. The serial schedule
// (MaxConcurrentPipelines=1) keeps the capture to one pipeline, matching
// what the pre-DAG executor could produce.
func TestStateFormatV1ProcessLoads(t *testing.T) {
	cat := testDB(t)
	node := complexQuery(cat)
	ref := runPlan(t, cat, node, 2).SortedKey()

	pp := mustCompile(t, node, cat)
	ex := NewExecutor(pp, Options{
		Workers:                2,
		MaxConcurrentPipelines: 1,
		AutoSuspend:            AutoSuspend{Kind: KindProcess, AtProcessedBytes: 200_000},
	})
	if _, err := ex.Run(context.Background()); !errors.Is(err, ErrSuspended) {
		t.Fatal(err)
	}
	info := ex.Suspended()
	if len(info.InFlight) != 1 {
		t.Skipf("capture has %d in-flight pipelines; v1 can only express one", len(info.InFlight))
	}
	v1 := encodeStateV1(t, ex)

	// v1 process resumes require the exact worker count that was captured.
	nl := info.InFlight[0].Workers
	pp2 := mustCompile(t, node, cat)
	ex2 := NewExecutor(pp2, Options{Workers: nl})
	loadState(t, ex2, v1)
	res, err := ex2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.SortedKey() != ref {
		t.Error("result after v1 process-state load differs")
	}

	// A mismatched worker count must be rejected, as before.
	pp3 := mustCompile(t, node, cat)
	ex3 := NewExecutor(pp3, Options{Workers: nl + 1})
	if err := ex3.LoadState(vector.NewDecoder(bytes.NewReader(v1))); err == nil {
		t.Error("v1 process state must reject a different worker count")
	}
}
