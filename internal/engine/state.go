package engine

import (
	"fmt"
	"io"
	"time"

	"github.com/riveterdb/riveter/internal/vector"
)

// Executor state serialization: the payload of both checkpoint flavors.
//
// Pipeline-level checkpoints persist the finalized global sink states that
// pending pipelines still consume, plus the pipeline progress bitmap.
// Process-level checkpoints additionally persist, for every pipeline the DAG
// scheduler had in flight, its morsel cursor and each of its workers' local
// sink states — the full execution context, as a CRIU dump would.
//
// Format v1 (pre-DAG) assumed at most one pipeline in flight; v2 carries a
// set. LoadState accepts both, so checkpoints written before the DAG
// scheduler remain restorable.

const (
	stateMagic     = "RVST"
	stateVersionV1 = 1
	stateVersion   = 2
)

// StateFormatVersion is the executor state format version written by
// SaveState; checkpoint manifests record it for forensics and Verify walks.
const StateFormatVersion = stateVersion

// SaveState serializes the executor's suspension state. Must be called only
// after Run returned ErrSuspended (or before Run for a cold checkpoint).
func (ex *Executor) SaveState(enc *vector.Encoder) error {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	kind := KindPipeline
	if ex.suspended != nil {
		kind = ex.suspended.Kind
	}
	return ex.saveStateLocked(enc, kind)
}

func (ex *Executor) saveStateLocked(enc *vector.Encoder, kind SuspendKind) error {
	enc.String(stateMagic)
	enc.Uvarint(stateVersion)
	enc.Uvarint(uint64(kind))
	enc.Uvarint(ex.pp.Fingerprint)
	enc.Uvarint(uint64(ex.opts.Workers))
	enc.Varint(int64(ex.elapsed))
	enc.Varint(ex.acct.ProcessedBytes())
	enc.Uvarint(uint64(len(ex.pp.Pipelines)))
	for i := range ex.pp.Pipelines {
		enc.Bool(ex.done[i])
		if ex.done[i] {
			enc.Varint(int64(ex.pipeTimes[i]))
		}
	}

	live := ex.livePipes()
	enc.Uvarint(uint64(len(live)))
	for _, pi := range live {
		enc.Uvarint(uint64(pi))
		if err := ex.pp.Pipelines[pi].Sink.SaveGlobal(enc); err != nil {
			return err
		}
	}

	if kind == KindProcess {
		enc.Uvarint(uint64(len(ex.inflight)))
		for _, c := range ex.inflight {
			enc.Uvarint(uint64(c.pi))
			enc.Uvarint(uint64(c.cursor))
			enc.Varint(int64(c.elapsed))
			enc.Uvarint(uint64(len(c.locals)))
			sink := ex.pp.Pipelines[c.pi].Sink
			for _, ls := range c.locals {
				if err := sink.SaveLocal(ls, enc); err != nil {
					return err
				}
			}
		}
	}
	return enc.Err()
}

// savePipelineStateAt serializes a pipeline-kind snapshot with the
// executor's accumulated elapsed time overridden — breaker snapshots are
// taken mid-Run, where ex.elapsed still holds only the time of completed
// Run calls (the current run's share is folded in when Run returns).
func (ex *Executor) savePipelineStateAt(enc *vector.Encoder, elapsed time.Duration) error {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	old := ex.elapsed
	if elapsed > 0 {
		ex.elapsed = elapsed
	}
	err := ex.saveStateLocked(enc, KindPipeline)
	ex.elapsed = old
	return err
}

// livePipes returns done pipelines whose sink state is still consumed by a
// pipeline that has not finished (including in-flight ones).
func (ex *Executor) livePipes() []int {
	needed := map[int]bool{}
	for qi := range ex.pp.Pipelines {
		if ex.done[qi] {
			continue
		}
		for _, dep := range ex.pp.Pipelines[qi].Deps {
			if ex.done[dep] {
				needed[dep] = true
			}
		}
	}
	live := make([]int, 0, len(needed))
	for pi := range ex.pp.Pipelines {
		if needed[pi] {
			live = append(live, pi)
		}
	}
	return live
}

// LoadState restores a suspension state into a freshly built executor over
// the same physical plan. After LoadState, Run continues the query. Both the
// current v2 format and the pre-DAG v1 format are accepted.
func (ex *Executor) LoadState(dec *vector.Decoder) error {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	if ex.ranAlready {
		return fmt.Errorf("engine: LoadState on a used executor")
	}
	if m := dec.String(); m != stateMagic {
		return fmt.Errorf("engine: bad state magic %q", m)
	}
	switch v := dec.Uvarint(); v {
	case stateVersionV1:
		return ex.loadStateV1Locked(dec)
	case stateVersion:
		return ex.loadStateV2Locked(dec)
	default:
		return fmt.Errorf("engine: unsupported state version %d", v)
	}
}

// loadHeaderLocked reads and validates the fields shared by v1 and v2 after
// the version: kind, fingerprint, workers. It returns the kind.
func (ex *Executor) loadHeaderLocked(dec *vector.Decoder) (SuspendKind, error) {
	kind := SuspendKind(dec.Uvarint())
	fp := dec.Uvarint()
	if err := dec.Err(); err != nil {
		return 0, err
	}
	if fp != ex.pp.Fingerprint {
		return 0, fmt.Errorf("engine: checkpoint plan fingerprint %016x does not match plan %016x", fp, ex.pp.Fingerprint)
	}
	workers := int(dec.Uvarint())
	if kind == KindProcess && workers != ex.opts.Workers {
		// The paper's process-level strategy "requires identical resource
		// configurations ... as were in use at the time of suspension".
		return 0, fmt.Errorf("engine: process-level resume requires %d workers, executor has %d", workers, ex.opts.Workers)
	}
	return kind, nil
}

// loadDoneLocked reads the pipeline-count header and done bitmap with times.
func (ex *Executor) loadDoneLocked(dec *vector.Decoder) error {
	np := int(dec.Uvarint())
	if err := dec.Err(); err != nil {
		return err
	}
	if np != len(ex.pp.Pipelines) {
		return fmt.Errorf("engine: checkpoint has %d pipelines, plan has %d", np, len(ex.pp.Pipelines))
	}
	for i := 0; i < np; i++ {
		ex.done[i] = dec.Bool()
		if ex.done[i] {
			ex.pipeTimes[i] = time.Duration(dec.Varint())
		}
	}
	return dec.Err()
}

// loadGlobalsLocked reads the live global sink states.
func (ex *Executor) loadGlobalsLocked(dec *vector.Decoder) error {
	nLive := int(dec.Uvarint())
	for i := 0; i < nLive; i++ {
		pi := int(dec.Uvarint())
		if err := dec.Err(); err != nil {
			return err
		}
		if pi < 0 || pi >= len(ex.pp.Pipelines) {
			return fmt.Errorf("engine: checkpoint live pipeline %d out of range", pi)
		}
		if err := ex.pp.Pipelines[pi].Sink.LoadGlobal(dec); err != nil {
			return fmt.Errorf("engine: load global state of pipeline %d: %w", pi, err)
		}
	}
	return dec.Err()
}

// loadStateV1Locked restores the pre-DAG single-in-flight format, translating
// a process-level capture into a one-element in-flight set.
func (ex *Executor) loadStateV1Locked(dec *vector.Decoder) error {
	kind, err := ex.loadHeaderLocked(dec)
	if err != nil {
		return err
	}
	ex.elapsed = time.Duration(dec.Varint())
	pipeElapsed := time.Duration(dec.Varint())
	ex.acct.SetProcessed(dec.Varint())
	if err := ex.loadDoneLocked(dec); err != nil {
		return err
	}
	next := int(dec.Uvarint())
	cursor := int64(dec.Uvarint())
	if err := dec.Err(); err != nil {
		return err
	}
	np := len(ex.pp.Pipelines)
	if next < 0 || next > np {
		return fmt.Errorf("engine: checkpoint next pipeline %d out of range", next)
	}
	if err := ex.loadGlobalsLocked(dec); err != nil {
		return err
	}
	ex.inflight = nil
	if kind == KindProcess {
		nl := int(dec.Uvarint())
		if err := dec.Err(); err != nil {
			return err
		}
		if nl != ex.opts.Workers {
			return fmt.Errorf("engine: checkpoint has %d worker locals, executor has %d workers", nl, ex.opts.Workers)
		}
		if next >= np {
			return fmt.Errorf("engine: checkpoint in-flight pipeline %d out of range", next)
		}
		sink := ex.pp.Pipelines[next].Sink
		locals := make([]LocalState, nl)
		for w := 0; w < nl; w++ {
			ls, err := sink.LoadLocal(dec)
			if err != nil {
				return fmt.Errorf("engine: load local state %d: %w", w, err)
			}
			locals[w] = ls
		}
		ex.inflight = []*inflightPipe{{pi: next, cursor: cursor, locals: locals, elapsed: pipeElapsed}}
	}
	return dec.Err()
}

// loadStateV2Locked restores the DAG-era format with its in-flight set.
func (ex *Executor) loadStateV2Locked(dec *vector.Decoder) error {
	kind, err := ex.loadHeaderLocked(dec)
	if err != nil {
		return err
	}
	ex.elapsed = time.Duration(dec.Varint())
	ex.acct.SetProcessed(dec.Varint())
	if err := ex.loadDoneLocked(dec); err != nil {
		return err
	}
	if err := ex.loadGlobalsLocked(dec); err != nil {
		return err
	}
	ex.inflight = nil
	if kind != KindProcess {
		return dec.Err()
	}
	np := len(ex.pp.Pipelines)
	nIn := int(dec.Uvarint())
	if err := dec.Err(); err != nil {
		return err
	}
	if nIn < 0 || nIn > np {
		return fmt.Errorf("engine: checkpoint in-flight count %d out of range", nIn)
	}
	totalLocals := 0
	seen := make(map[int]bool, nIn)
	for i := 0; i < nIn; i++ {
		pi := int(dec.Uvarint())
		cursor := int64(dec.Uvarint())
		elapsed := time.Duration(dec.Varint())
		nl := int(dec.Uvarint())
		if err := dec.Err(); err != nil {
			return err
		}
		if pi < 0 || pi >= np || ex.done[pi] || seen[pi] {
			return fmt.Errorf("engine: checkpoint in-flight pipeline %d invalid", pi)
		}
		seen[pi] = true
		for _, dep := range ex.pp.Pipelines[pi].Deps {
			if !ex.done[dep] {
				return fmt.Errorf("engine: checkpoint in-flight pipeline %d has unfinished dep %d", pi, dep)
			}
		}
		if nl < 1 {
			return fmt.Errorf("engine: checkpoint in-flight pipeline %d has no worker locals", pi)
		}
		totalLocals += nl
		if totalLocals > ex.opts.Workers {
			return fmt.Errorf("engine: checkpoint worker locals exceed %d workers", ex.opts.Workers)
		}
		sink := ex.pp.Pipelines[pi].Sink
		locals := make([]LocalState, nl)
		for w := 0; w < nl; w++ {
			ls, err := sink.LoadLocal(dec)
			if err != nil {
				return fmt.Errorf("engine: load local state %d of pipeline %d: %w", w, pi, err)
			}
			locals[w] = ls
		}
		if c := ex.pp.Pipelines[pi].Source.MorselCount(); cursor > c {
			return fmt.Errorf("engine: checkpoint cursor %d exceeds %d morsels of pipeline %d", cursor, c, pi)
		}
		ex.inflight = append(ex.inflight, &inflightPipe{pi: pi, cursor: cursor, locals: locals, elapsed: elapsed})
	}
	return dec.Err()
}

// countingWriter counts bytes written.
type countingWriter struct{ n int64 }

func (c *countingWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

var _ io.Writer = (*countingWriter)(nil)

// measureState serializes a hypothetical checkpoint of the given kind
// to a counting writer and returns its size in bytes.
func (ex *Executor) measureState(kind SuspendKind) int64 {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	var cw countingWriter
	enc := vector.NewEncoder(&cw)
	_ = ex.saveStateLocked(enc, kind)
	return cw.n
}

// MeasureSuspendedStateBytes returns the serialized size of the actual
// suspension capture (after Run returned ErrSuspended).
func (ex *Executor) MeasureSuspendedStateBytes() int64 {
	ex.mu.Lock()
	s := ex.suspended
	ex.mu.Unlock()
	if s == nil {
		return 0
	}
	return ex.measureState(s.Kind)
}

// ProcessImagePadding returns the number of padding bytes a process-level
// checkpoint must append so the persisted image matches the modeled resident
// process size (the CRIU dump includes non-deallocated memory that our
// serialized live state does not).
func (ex *Executor) ProcessImagePadding(serialized int64) int64 {
	img := ex.acct.ImageBytes(ex.liveStateBytes())
	if img <= serialized {
		return 0
	}
	return img - serialized
}
