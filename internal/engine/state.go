package engine

import (
	"fmt"
	"io"
	"time"

	"github.com/riveterdb/riveter/internal/vector"
)

// Executor state serialization: the payload of both checkpoint flavors.
//
// Pipeline-level checkpoints persist the finalized global sink states that
// pending pipelines still consume, plus the pipeline progress bitmap.
// Process-level checkpoints additionally persist the interrupted pipeline's
// morsel cursor and every worker's local sink state — the full execution
// context, as a CRIU dump would.

const (
	stateMagic   = "RVST"
	stateVersion = 1
)

// SaveState serializes the executor's suspension state. Must be called only
// after Run returned ErrSuspended (or before Run for a cold checkpoint).
func (ex *Executor) SaveState(enc *vector.Encoder) error {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	kind := KindPipeline
	cursor := int64(0)
	next := ex.current
	if ex.suspended != nil {
		kind = ex.suspended.Kind
		cursor = ex.suspended.Cursor
		next = ex.suspended.Pipeline
	}
	return ex.saveStateLocked(enc, kind, next, cursor, ex.locals)
}

func (ex *Executor) saveStateLocked(enc *vector.Encoder, kind SuspendKind, next int, cursor int64, locals []LocalState) error {
	enc.String(stateMagic)
	enc.Uvarint(stateVersion)
	enc.Uvarint(uint64(kind))
	enc.Uvarint(ex.pp.Fingerprint)
	enc.Uvarint(uint64(ex.opts.Workers))
	enc.Varint(int64(ex.elapsed))
	enc.Varint(int64(ex.pipeElapsed))
	enc.Varint(ex.acct.ProcessedBytes())
	enc.Uvarint(uint64(len(ex.pp.Pipelines)))
	for i := range ex.pp.Pipelines {
		enc.Bool(ex.done[i])
		if ex.done[i] {
			enc.Varint(int64(ex.pipeTimes[i]))
		}
	}
	enc.Uvarint(uint64(next))
	enc.Uvarint(uint64(cursor))

	live := ex.livePipes(next)
	enc.Uvarint(uint64(len(live)))
	for _, pi := range live {
		enc.Uvarint(uint64(pi))
		if err := ex.pp.Pipelines[pi].Sink.SaveGlobal(enc); err != nil {
			return err
		}
	}

	if kind == KindProcess {
		enc.Uvarint(uint64(len(locals)))
		sink := ex.pp.Pipelines[next].Sink
		for _, ls := range locals {
			if err := sink.SaveLocal(ls, enc); err != nil {
				return err
			}
		}
	}
	return enc.Err()
}

// livePipes returns done pipelines whose sink state is still consumed
// by a pipeline that has not finished (including the interrupted one).
func (ex *Executor) livePipes(next int) []int {
	needed := map[int]bool{}
	for qi := next; qi < len(ex.pp.Pipelines); qi++ {
		if qi < len(ex.done) && ex.done[qi] {
			continue
		}
		for _, dep := range ex.pp.Pipelines[qi].Deps {
			if ex.done[dep] {
				needed[dep] = true
			}
		}
	}
	live := make([]int, 0, len(needed))
	for pi := 0; pi < len(ex.pp.Pipelines); pi++ {
		if needed[pi] {
			live = append(live, pi)
		}
	}
	return live
}

// LoadState restores a suspension state into a freshly built executor over
// the same physical plan. After LoadState, Run continues the query.
func (ex *Executor) LoadState(dec *vector.Decoder) error {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	if ex.ranAlready {
		return fmt.Errorf("engine: LoadState on a used executor")
	}
	if m := dec.String(); m != stateMagic {
		return fmt.Errorf("engine: bad state magic %q", m)
	}
	if v := dec.Uvarint(); v != stateVersion {
		return fmt.Errorf("engine: unsupported state version %d", v)
	}
	kind := SuspendKind(dec.Uvarint())
	fp := dec.Uvarint()
	if err := dec.Err(); err != nil {
		return err
	}
	if fp != ex.pp.Fingerprint {
		return fmt.Errorf("engine: checkpoint plan fingerprint %016x does not match plan %016x", fp, ex.pp.Fingerprint)
	}
	workers := int(dec.Uvarint())
	if kind == KindProcess && workers != ex.opts.Workers {
		// The paper's process-level strategy "requires identical resource
		// configurations ... as were in use at the time of suspension".
		return fmt.Errorf("engine: process-level resume requires %d workers, executor has %d", workers, ex.opts.Workers)
	}
	ex.elapsed = time.Duration(dec.Varint())
	ex.pipeElapsed = time.Duration(dec.Varint())
	ex.acct.SetProcessed(dec.Varint())
	np := int(dec.Uvarint())
	if err := dec.Err(); err != nil {
		return err
	}
	if np != len(ex.pp.Pipelines) {
		return fmt.Errorf("engine: checkpoint has %d pipelines, plan has %d", np, len(ex.pp.Pipelines))
	}
	for i := 0; i < np; i++ {
		ex.done[i] = dec.Bool()
		if ex.done[i] {
			ex.pipeTimes[i] = time.Duration(dec.Varint())
		}
	}
	next := int(dec.Uvarint())
	cursor := int64(dec.Uvarint())
	if err := dec.Err(); err != nil {
		return err
	}
	if next < 0 || next > np {
		return fmt.Errorf("engine: checkpoint next pipeline %d out of range", next)
	}

	nLive := int(dec.Uvarint())
	for i := 0; i < nLive; i++ {
		pi := int(dec.Uvarint())
		if err := dec.Err(); err != nil {
			return err
		}
		if pi < 0 || pi >= np {
			return fmt.Errorf("engine: checkpoint live pipeline %d out of range", pi)
		}
		if err := ex.pp.Pipelines[pi].Sink.LoadGlobal(dec); err != nil {
			return fmt.Errorf("engine: load global state of pipeline %d: %w", pi, err)
		}
	}

	ex.current = next
	ex.cursor = 0
	ex.locals = nil
	if kind == KindProcess {
		nl := int(dec.Uvarint())
		if err := dec.Err(); err != nil {
			return err
		}
		if nl != ex.opts.Workers {
			return fmt.Errorf("engine: checkpoint has %d worker locals, executor has %d workers", nl, ex.opts.Workers)
		}
		sink := ex.pp.Pipelines[next].Sink
		locals := make([]LocalState, nl)
		for w := 0; w < nl; w++ {
			ls, err := sink.LoadLocal(dec)
			if err != nil {
				return fmt.Errorf("engine: load local state %d: %w", w, err)
			}
			locals[w] = ls
		}
		ex.locals = locals
		ex.cursor = cursor
	}
	return dec.Err()
}

// countingWriter counts bytes written.
type countingWriter struct{ n int64 }

func (c *countingWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

var _ io.Writer = (*countingWriter)(nil)

// measureState serializes a hypothetical checkpoint of the given kind
// to a counting writer and returns its size in bytes.
func (ex *Executor) measureState(kind SuspendKind, next int) int64 {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	var cw countingWriter
	enc := vector.NewEncoder(&cw)
	_ = ex.saveStateLocked(enc, kind, next, ex.cursor, ex.locals)
	return cw.n
}

// MeasureSuspendedStateBytes returns the serialized size of the actual
// suspension capture (after Run returned ErrSuspended).
func (ex *Executor) MeasureSuspendedStateBytes() int64 {
	ex.mu.Lock()
	s := ex.suspended
	ex.mu.Unlock()
	if s == nil {
		return 0
	}
	return ex.measureState(s.Kind, s.Pipeline)
}

// ProcessImagePadding returns the number of padding bytes a process-level
// checkpoint must append so the persisted image matches the modeled resident
// process size (the CRIU dump includes non-deallocated memory that our
// serialized live state does not).
func (ex *Executor) ProcessImagePadding(serialized int64) int64 {
	img := ex.acct.ImageBytes(ex.liveStateBytes())
	if img <= serialized {
		return 0
	}
	return img - serialized
}
