package engine

import (
	"fmt"

	"github.com/riveterdb/riveter/internal/catalog"
	"github.com/riveterdb/riveter/internal/vector"
)

// MorselRows is the number of rows claimed by a worker per morsel. One morsel
// is the granularity of both work stealing and process-level suspension.
const MorselRows = vector.ChunkCapacity

// Source produces the morsels of a pipeline. Implementations must be safe
// for concurrent ReadMorsel calls with distinct destination chunks.
type Source interface {
	// MorselCount returns the total number of morsels. It is only called
	// after the source's dependency pipelines have finalized.
	MorselCount() int64
	// ReadMorsel fills dst with the rows of morsel idx and returns the row
	// count (0 at the end of ragged inputs).
	ReadMorsel(idx int64, dst *vector.Chunk) (int, error)
	// OutTypes returns the column types the source produces.
	OutTypes() []vector.Type
}

// TableSource scans a base table with column projection.
type TableSource struct {
	table *catalog.Table
	proj  []int
	types []vector.Type
}

// NewTableSource builds a table scan source.
func NewTableSource(t *catalog.Table, proj []int) *TableSource {
	types := make([]vector.Type, len(proj))
	for i, j := range proj {
		types[i] = t.Schema().Columns[j].Type
	}
	return &TableSource{table: t, proj: proj, types: types}
}

// MorselCount implements Source.
func (s *TableSource) MorselCount() int64 {
	return (s.table.NumRows() + MorselRows - 1) / MorselRows
}

// ReadMorsel implements Source.
func (s *TableSource) ReadMorsel(idx int64, dst *vector.Chunk) (int, error) {
	n := s.table.ScanInto(dst, idx*MorselRows, MorselRows, s.proj)
	return n, nil
}

// OutTypes implements Source.
func (s *TableSource) OutTypes() []vector.Type { return s.types }

// BufferedSink is implemented by sinks whose finalized global state is a
// row buffer scannable by downstream pipelines (aggregates, sorts,
// collectors). The hash-join build sink is not buffered: probes address it
// directly.
type BufferedSink interface {
	Sink
	// Buffer returns the finalized output rows. Only valid after Finalize.
	Buffer() *RowBuffer
}

// SinkSource scans the finalized buffer of an upstream pipeline's sink.
type SinkSource struct {
	sink  BufferedSink
	types []vector.Type
}

// NewSinkSource builds a source over a buffered sink.
func NewSinkSource(sink BufferedSink, types []vector.Type) *SinkSource {
	return &SinkSource{sink: sink, types: types}
}

// MorselCount implements Source.
func (s *SinkSource) MorselCount() int64 { return int64(s.sink.Buffer().NumChunks()) }

// ReadMorsel implements Source.
func (s *SinkSource) ReadMorsel(idx int64, dst *vector.Chunk) (int, error) {
	buf := s.sink.Buffer()
	if idx >= int64(buf.NumChunks()) {
		return 0, nil
	}
	src := buf.Chunk(int(idx))
	dst.Reset()
	dst.AppendChunk(src)
	return src.Len(), nil
}

// OutTypes implements Source.
func (s *SinkSource) OutTypes() []vector.Type { return s.types }

// BufferSource scans a detached, finalized row buffer — a materialized
// subplan result shared across compilations (the common-subplan cache).
// Reads copy rows out, so many concurrent executors can scan one buffer.
type BufferSource struct {
	buf   *RowBuffer
	types []vector.Type
}

// NewBufferSource builds a source over a finalized buffer.
func NewBufferSource(buf *RowBuffer, types []vector.Type) *BufferSource {
	return &BufferSource{buf: buf, types: types}
}

// MorselCount implements Source.
func (s *BufferSource) MorselCount() int64 { return int64(s.buf.NumChunks()) }

// ReadMorsel implements Source.
func (s *BufferSource) ReadMorsel(idx int64, dst *vector.Chunk) (int, error) {
	if idx >= int64(s.buf.NumChunks()) {
		return 0, nil
	}
	src := s.buf.Chunk(int(idx))
	dst.Reset()
	dst.AppendChunk(src)
	return src.Len(), nil
}

// OutTypes implements Source.
func (s *BufferSource) OutTypes() []vector.Type { return s.types }

// UnionSource concatenates the finalized buffers of several upstream sinks.
type UnionSource struct {
	sinks []BufferedSink
	types []vector.Type
}

// NewUnionSource builds a source over multiple buffered sinks.
func NewUnionSource(sinks []BufferedSink, types []vector.Type) *UnionSource {
	return &UnionSource{sinks: sinks, types: types}
}

// MorselCount implements Source.
func (s *UnionSource) MorselCount() int64 {
	var n int64
	for _, sk := range s.sinks {
		n += int64(sk.Buffer().NumChunks())
	}
	return n
}

// ReadMorsel implements Source.
func (s *UnionSource) ReadMorsel(idx int64, dst *vector.Chunk) (int, error) {
	for _, sk := range s.sinks {
		buf := sk.Buffer()
		if idx < int64(buf.NumChunks()) {
			src := buf.Chunk(int(idx))
			dst.Reset()
			dst.AppendChunk(src)
			return src.Len(), nil
		}
		idx -= int64(buf.NumChunks())
	}
	return 0, fmt.Errorf("union source: morsel index out of range")
}

// OutTypes implements Source.
func (s *UnionSource) OutTypes() []vector.Type { return s.types }
