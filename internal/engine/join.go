package engine

import (
	"fmt"
	"sync"

	"github.com/riveterdb/riveter/internal/expr"
	"github.com/riveterdb/riveter/internal/plan"
	"github.com/riveterdb/riveter/internal/vector"
)

// HashJoinBuildSink is the pipeline breaker that materializes the build
// (right) side of a hash join. The buffered rows are laid out as the key
// columns followed by the full build-side payload; the bucket index maps key
// hashes to row ids and is rebuilt from the buffer on load, so checkpoints
// persist only the rows — exactly the "entire hash table for the join" the
// paper measures for join-ending pipelines (Fig. 8).
type HashJoinBuildSink struct {
	keyExprs []expr.Expr // over the build input schema
	keyTypes []vector.Type
	payTypes []vector.Type
	rowTypes []vector.Type // keyTypes ++ payTypes

	buf   *RowBuffer
	index joinIndex
	final bool
}

// joinIndex is the probe-side hash index over the build buffer: a flat
// chained-bucket layout (slot heads + per-row next links) with a stored
// hash per row as a cheap prefilter before the real key comparison. It is
// rebuilt from the row buffer on finalize and on checkpoint load, so it
// never appears in the persisted state.
type joinIndex struct {
	mask   uint64
	heads  []int64  // slot -> first row id, -1 when empty
	next   []int64  // row id -> next row in chain, -1 at end
	hashes []uint64 // row id -> key hash
}

// NewHashJoinBuildSink builds the sink for the given key expressions and
// build-side input types.
func NewHashJoinBuildSink(keys []expr.Expr, inTypes []vector.Type) *HashJoinBuildSink {
	kt := make([]vector.Type, len(keys))
	for i, k := range keys {
		kt[i] = k.Type()
	}
	rt := append(append([]vector.Type{}, kt...), inTypes...)
	return &HashJoinBuildSink{
		keyExprs: keys,
		keyTypes: kt,
		payTypes: inTypes,
		rowTypes: rt,
		buf:      NewRowBuffer(rt),
	}
}

type joinBuildLocal struct {
	buf *RowBuffer
	// keyVecs and rowCols are per-chunk scratch for evaluated key vectors
	// and the key++payload column layout; worker-local, so plain reuse is
	// race-free.
	keyVecs []*vector.Vector
	rowCols []*vector.Vector
}

// MakeLocal implements Sink.
func (s *HashJoinBuildSink) MakeLocal() LocalState {
	return &joinBuildLocal{buf: NewRowBuffer(s.rowTypes)}
}

// Consume implements Sink.
func (s *HashJoinBuildSink) Consume(ls LocalState, c *vector.Chunk) error {
	l := ls.(*joinBuildLocal)
	if cap(l.keyVecs) < len(s.keyExprs) {
		l.keyVecs = make([]*vector.Vector, len(s.keyExprs))
	}
	keyVecs := l.keyVecs[:len(s.keyExprs)]
	for i, k := range s.keyExprs {
		v, err := k.Eval(c)
		if err != nil {
			return err
		}
		keyVecs[i] = v
	}
	// Lay out key columns then payload columns and bulk-append the whole
	// chunk; AppendRange copies, so aliasing key vectors to input columns
	// (a bare column-reference key) is fine.
	l.rowCols = l.rowCols[:0]
	l.rowCols = append(l.rowCols, keyVecs...)
	l.rowCols = append(l.rowCols, c.Cols()...)
	l.buf.appendVectors(l.rowCols, c.Len())
	return nil
}

// Combine implements Sink.
func (s *HashJoinBuildSink) Combine(ls LocalState) error {
	s.buf.Concat(ls.(*joinBuildLocal).buf)
	return nil
}

// Finalize implements Sink.
func (s *HashJoinBuildSink) Finalize() error {
	s.rebuildBuckets()
	s.final = true
	return nil
}

func (s *HashJoinBuildSink) rebuildBuckets() {
	nk := len(s.keyTypes)
	rows := s.buf.Rows()
	s.index = joinIndex{}
	if nk == 0 || rows == 0 {
		return // cross join: no index, every row matches
	}
	keyIdx := make([]int, nk)
	for i := range keyIdx {
		keyIdx[i] = i
	}
	// Pass 1: hash every row and record NULL-key rows (SQL equality: NULL
	// keys never match, so they are left out of the chains).
	hashes := make([]uint64, rows)
	skip := make([]bool, rows)
	var chunkHashes []uint64
	var rowID int64
	for ci := 0; ci < s.buf.NumChunks(); ci++ {
		c := s.buf.Chunk(ci)
		chunkHashes = c.Hash(keyIdx, chunkHashes)
		copy(hashes[rowID:], chunkHashes)
		hasNulls := false
		for k := 0; k < nk; k++ {
			if c.Col(k).HasNulls() {
				hasNulls = true
				break
			}
		}
		if hasNulls {
			for i := 0; i < c.Len(); i++ {
				skip[rowID+int64(i)] = rowHasNullKey(c, nk, i)
			}
		}
		rowID += int64(c.Len())
	}
	// Pass 2: chain rows under power-of-two slots. Inserting in descending
	// row order yields ascending chains, preserving the match emission
	// order of the old per-hash bucket lists.
	slots := uint64(1)
	for slots < uint64(rows) {
		slots <<= 1
	}
	idx := joinIndex{
		mask:   slots - 1,
		heads:  make([]int64, slots),
		next:   make([]int64, rows),
		hashes: hashes,
	}
	for i := range idx.heads {
		idx.heads[i] = -1
	}
	for r := rows - 1; r >= 0; r-- {
		if skip[r] {
			idx.next[r] = -1
			continue
		}
		slot := hashes[r] & idx.mask
		idx.next[r] = idx.heads[slot]
		idx.heads[slot] = r
	}
	s.index = idx
}

func rowHasNullKey(c *vector.Chunk, nk, i int) bool {
	for k := 0; k < nk; k++ {
		if c.Col(k).IsNull(i) {
			return true
		}
	}
	return false
}

// NumKeys returns the number of equi-join keys.
func (s *HashJoinBuildSink) NumKeys() int { return len(s.keyTypes) }

// Rows returns the number of buffered build rows.
func (s *HashJoinBuildSink) Rows() int64 { return s.buf.Rows() }

// SaveGlobal implements Sink.
func (s *HashJoinBuildSink) SaveGlobal(enc *vector.Encoder) error {
	s.buf.Save(enc)
	return enc.Err()
}

// LoadGlobal implements Sink.
func (s *HashJoinBuildSink) LoadGlobal(dec *vector.Decoder) error {
	buf, err := LoadRowBuffer(dec)
	if err != nil {
		return err
	}
	s.buf = buf
	s.rebuildBuckets()
	s.final = true
	return nil
}

// SaveLocal implements Sink.
func (s *HashJoinBuildSink) SaveLocal(ls LocalState, enc *vector.Encoder) error {
	ls.(*joinBuildLocal).buf.Save(enc)
	return enc.Err()
}

// LoadLocal implements Sink.
func (s *HashJoinBuildSink) LoadLocal(dec *vector.Decoder) (LocalState, error) {
	buf, err := LoadRowBuffer(dec)
	if err != nil {
		return nil, err
	}
	return &joinBuildLocal{buf: buf}, nil
}

// MemBytes implements Sink.
func (s *HashJoinBuildSink) MemBytes() int64 {
	b := s.buf.MemBytes()
	b += int64(len(s.index.heads)+len(s.index.next)+len(s.index.hashes)) * 8
	return b
}

// LocalMemBytes implements Sink.
func (s *HashJoinBuildSink) LocalMemBytes(ls LocalState) int64 {
	return ls.(*joinBuildLocal).buf.MemBytes()
}

// HashJoinProbeOp is the streaming probe operator. It reads the immutable
// finalized state of its build sink and therefore carries no per-worker
// state of its own.
type HashJoinProbeOp struct {
	Type     plan.JoinType
	build    *HashJoinBuildSink
	keyExprs []expr.Expr // over the probe input schema
	extra    expr.Expr   // over probe ++ build payload; may be nil

	probeTypes []vector.Type
	outTypes   []vector.Type
	pairTypes  []vector.Type // probeTypes ++ build payload types

	// scratch pools per-worker probe state (the operator instance is shared
	// by all workers of the pipeline). See chunkPool for why reusing emitted
	// chunks is sound.
	scratch sync.Pool
}

// probeScratch is the reusable per-Process working set of a probe.
type probeScratch struct {
	keyVecs  []*vector.Vector
	hashes   []uint64
	matched  []bool
	pair     *vector.Chunk // joined probe++payload rows pending flush
	pairRows []int         // probe row index of each pair row
	filtered *vector.Chunk // pair rows surviving the extra predicate
	frows    []int
	tail     *vector.Chunk // left-outer padding / semi-anti output
}

// getScratch returns a scratch sized for an n-row probe chunk.
func (p *HashJoinProbeOp) getScratch(n int) *probeScratch {
	s, _ := p.scratch.Get().(*probeScratch)
	if s == nil {
		s = &probeScratch{
			keyVecs: make([]*vector.Vector, len(p.keyExprs)),
			pair:    vector.NewChunk(p.pairTypes),
		}
		if p.extra != nil {
			s.filtered = vector.NewChunk(p.pairTypes)
		}
		switch p.Type {
		case plan.LeftOuterJoin:
			s.tail = vector.NewChunk(p.pairTypes)
		case plan.SemiJoin, plan.AntiJoin:
			s.tail = vector.NewChunk(p.probeTypes)
		}
	}
	if cap(s.hashes) < n {
		s.hashes = make([]uint64, n)
	}
	s.hashes = s.hashes[:n]
	if cap(s.matched) < n {
		s.matched = make([]bool, n)
	}
	s.matched = s.matched[:n]
	for i := 0; i < n; i++ {
		s.hashes[i] = 0
		s.matched[i] = false
	}
	s.pair.Reset()
	s.pairRows = s.pairRows[:0]
	return s
}

// NewHashJoinProbeOp builds the probe operator.
func NewHashJoinProbeOp(jt plan.JoinType, build *HashJoinBuildSink, keys []expr.Expr, extra expr.Expr, probeTypes []vector.Type) *HashJoinProbeOp {
	pair := append(append([]vector.Type{}, probeTypes...), build.payTypes...)
	out := pair
	if jt == plan.SemiJoin || jt == plan.AntiJoin {
		out = probeTypes
	}
	return &HashJoinProbeOp{
		Type:       jt,
		build:      build,
		keyExprs:   keys,
		extra:      extra,
		probeTypes: probeTypes,
		outTypes:   out,
		pairTypes:  pair,
	}
}

// OutTypes implements StreamOp.
func (p *HashJoinProbeOp) OutTypes() []vector.Type { return p.outTypes }

// Process implements StreamOp.
func (p *HashJoinProbeOp) Process(in *vector.Chunk, emit func(*vector.Chunk) error) error {
	if !p.build.final {
		return fmt.Errorf("hash join probe before build finalize")
	}
	n := in.Len()
	if n == 0 {
		return nil
	}
	// Evaluate and hash the probe keys.
	s := p.getScratch(n)
	defer p.scratch.Put(s)
	keyVecs := s.keyVecs
	for i, k := range p.keyExprs {
		v, err := k.Eval(in)
		if err != nil {
			return err
		}
		keyVecs[i] = v
	}
	hashes := s.hashes
	for _, kv := range keyVecs {
		kv.HashInto(hashes)
	}

	matched := s.matched
	emitPairs := p.Type == plan.InnerJoin || p.Type == plan.LeftOuterJoin || p.Type == plan.CrossJoin
	pairOut := s.pair

	flush := func() error {
		if pairOut.Len() == 0 {
			return nil
		}
		keepChunk := pairOut
		keepRows := s.pairRows
		if p.extra != nil {
			sel, err := p.extra.Eval(pairOut)
			if err != nil {
				return err
			}
			s.filtered.Reset()
			s.frows = s.frows[:0]
			bs := sel.Bools()
			for i := 0; i < pairOut.Len(); i++ {
				if sel.IsNull(i) || !bs[i] {
					continue
				}
				s.filtered.AppendRowFrom(pairOut, i)
				s.frows = append(s.frows, s.pairRows[i])
			}
			keepChunk, keepRows = s.filtered, s.frows
		}
		for _, pr := range keepRows {
			matched[pr] = true
		}
		if emitPairs && keepChunk.Len() > 0 {
			if err := emit(keepChunk); err != nil {
				return err
			}
		}
		pairOut.Reset()
		s.pairRows = s.pairRows[:0]
		return nil
	}

	appendPair := func(probeRow int, buildRow int64) error {
		ci, ri := p.build.buf.Locate(buildRow)
		bc := p.build.buf.Chunk(ci)
		nk := len(p.build.keyTypes)
		for j := 0; j < in.NumCols(); j++ {
			pairOut.Col(j).AppendFrom(in.Col(j), probeRow)
		}
		for j := 0; j < len(p.build.payTypes); j++ {
			pairOut.Col(in.NumCols()+j).AppendFrom(bc.Col(nk+j), ri)
		}
		pairOut.SetLen(pairOut.Len() + 1)
		s.pairRows = append(s.pairRows, probeRow)
		if pairOut.Len() >= vector.ChunkCapacity {
			return flush()
		}
		return nil
	}

	if len(p.keyExprs) == 0 {
		// Cross join: every build row pairs with every probe row.
		for i := 0; i < n; i++ {
			for r := int64(0); r < p.build.buf.Rows(); r++ {
				if err := appendPair(i, r); err != nil {
					return err
				}
			}
		}
	} else {
		idx := &p.build.index
		for i := 0; i < n; i++ {
			if idx.heads == nil {
				break // empty build side: nothing can match
			}
			if probeRowHasNullKey(keyVecs, i) {
				continue // NULL keys never match
			}
			h := hashes[i]
			for r := idx.heads[h&idx.mask]; r >= 0; r = idx.next[r] {
				if idx.hashes[r] != h || !p.keysEqual(keyVecs, i, r) {
					continue
				}
				if err := appendPair(i, r); err != nil {
					return err
				}
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}

	switch p.Type {
	case plan.LeftOuterJoin:
		// Emit unmatched probe rows padded with NULL build columns.
		out := s.tail
		out.Reset()
		for i := 0; i < n; i++ {
			if matched[i] {
				continue
			}
			for j := 0; j < in.NumCols(); j++ {
				out.Col(j).AppendFrom(in.Col(j), i)
			}
			for j := 0; j < len(p.build.payTypes); j++ {
				out.Col(in.NumCols() + j).AppendNull()
			}
			out.SetLen(out.Len() + 1)
			if out.Len() >= vector.ChunkCapacity {
				if err := emit(out); err != nil {
					return err
				}
				out.Reset()
			}
		}
		if out.Len() > 0 {
			return emit(out)
		}
	case plan.SemiJoin, plan.AntiJoin:
		want := p.Type == plan.SemiJoin
		out := s.tail
		out.Reset()
		for i := 0; i < n; i++ {
			if matched[i] != want {
				continue
			}
			out.AppendRowFrom(in, i)
			if out.Len() >= vector.ChunkCapacity {
				if err := emit(out); err != nil {
					return err
				}
				out.Reset()
			}
		}
		if out.Len() > 0 {
			return emit(out)
		}
	}
	return nil
}

func probeRowHasNullKey(keyVecs []*vector.Vector, i int) bool {
	for _, kv := range keyVecs {
		if kv.IsNull(i) {
			return true
		}
	}
	return false
}

// keysEqual verifies probe row i's keys against build row r's key columns.
func (p *HashJoinProbeOp) keysEqual(keyVecs []*vector.Vector, i int, r int64) bool {
	ci, ri := p.build.buf.Locate(r)
	bc := p.build.buf.Chunk(ci)
	for k, kv := range keyVecs {
		bcol := bc.Col(k)
		if bcol.IsNull(ri) {
			return false
		}
		switch kv.Type() {
		case vector.TypeInt64, vector.TypeDate:
			if kv.Int64s()[i] != bcol.Int64s()[ri] {
				return false
			}
		case vector.TypeFloat64:
			if kv.Float64s()[i] != bcol.Float64s()[ri] {
				return false
			}
		case vector.TypeString:
			if kv.Strings()[i] != bcol.Strings()[ri] {
				return false
			}
		case vector.TypeBool:
			if kv.Bools()[i] != bcol.Bools()[ri] {
				return false
			}
		}
	}
	return true
}
