package engine

import (
	"fmt"

	"github.com/riveterdb/riveter/internal/expr"
	"github.com/riveterdb/riveter/internal/vector"
)

// StreamOp is a non-blocking operator inside a pipeline. Process may emit
// zero or more output chunks per input chunk via the emit callback.
// Implementations must be stateless across chunks (probe operators read the
// immutable global state of their build pipeline), which is what makes
// morsel-boundary suspension state-free above the sinks.
type StreamOp interface {
	Process(in *vector.Chunk, emit func(*vector.Chunk) error) error
	// OutTypes returns the operator's output column types.
	OutTypes() []vector.Type
}

// FilterOp keeps rows where the condition is true (NULL counts as false).
type FilterOp struct {
	Cond  expr.Expr
	types []vector.Type
}

// NewFilterOp builds a filter operator over inputs of the given types.
func NewFilterOp(cond expr.Expr, inTypes []vector.Type) *FilterOp {
	return &FilterOp{Cond: cond, types: inTypes}
}

// OutTypes implements StreamOp.
func (f *FilterOp) OutTypes() []vector.Type { return f.types }

// Process implements StreamOp.
func (f *FilterOp) Process(in *vector.Chunk, emit func(*vector.Chunk) error) error {
	if in.Len() == 0 {
		return nil
	}
	sel, err := f.Cond.Eval(in)
	if err != nil {
		return err
	}
	if sel.Type() != vector.TypeBool {
		return fmt.Errorf("filter condition of type %v", sel.Type())
	}
	out := vector.NewChunk(f.types)
	bs := sel.Bools()
	for i := 0; i < in.Len(); i++ {
		if sel.IsNull(i) || !bs[i] {
			continue
		}
		out.AppendRowFrom(in, i)
	}
	if out.Len() == 0 {
		return nil
	}
	return emit(out)
}

// ProjectOp computes one output column per expression.
type ProjectOp struct {
	Exprs []expr.Expr
	types []vector.Type
}

// NewProjectOp builds a projection operator.
func NewProjectOp(exprs []expr.Expr) *ProjectOp {
	types := make([]vector.Type, len(exprs))
	for i, e := range exprs {
		types[i] = e.Type()
	}
	return &ProjectOp{Exprs: exprs, types: types}
}

// OutTypes implements StreamOp.
func (p *ProjectOp) OutTypes() []vector.Type { return p.types }

// Process implements StreamOp.
func (p *ProjectOp) Process(in *vector.Chunk, emit func(*vector.Chunk) error) error {
	if in.Len() == 0 {
		return nil
	}
	out := vector.NewChunk(p.types)
	for j, e := range p.Exprs {
		v, err := e.Eval(in)
		if err != nil {
			return err
		}
		// Column references may return the input vector itself; chunks must
		// own their columns, so copy in that case.
		if _, shared := e.(*expr.Column); shared {
			cp := vector.New(v.Type(), v.Len())
			for i := 0; i < v.Len(); i++ {
				cp.AppendFrom(v, i)
			}
			v = cp
		}
		*out.Col(j) = *v
	}
	out.SetLen(in.Len())
	return emit(out)
}
