package engine

import (
	"fmt"
	"sync"

	"github.com/riveterdb/riveter/internal/expr"
	"github.com/riveterdb/riveter/internal/vector"
)

// chunkPool amortizes output-chunk allocations across Process calls. Operator
// instances are shared by every worker of a pipeline, so the scratch lives in
// a sync.Pool rather than on the operator. Pooling is sound because emitted
// chunks are never retained downstream: sinks copy rows out on Consume (the
// source chunk in runWorker is itself reused every morsel, which forces that
// discipline on the whole chain).
type chunkPool struct {
	types []vector.Type
	pool  sync.Pool
}

// get returns an empty chunk of the pool's types.
func (p *chunkPool) get() *vector.Chunk {
	if c, ok := p.pool.Get().(*vector.Chunk); ok {
		c.Reset()
		return c
	}
	return vector.NewChunk(p.types)
}

func (p *chunkPool) put(c *vector.Chunk) { p.pool.Put(c) }

// StreamOp is a non-blocking operator inside a pipeline. Process may emit
// zero or more output chunks per input chunk via the emit callback.
// Implementations must be stateless across chunks (probe operators read the
// immutable global state of their build pipeline), which is what makes
// morsel-boundary suspension state-free above the sinks.
type StreamOp interface {
	Process(in *vector.Chunk, emit func(*vector.Chunk) error) error
	// OutTypes returns the operator's output column types.
	OutTypes() []vector.Type
}

// FilterOp keeps rows where the condition is true (NULL counts as false).
type FilterOp struct {
	Cond  expr.Expr
	types []vector.Type
	out   chunkPool
}

// NewFilterOp builds a filter operator over inputs of the given types.
func NewFilterOp(cond expr.Expr, inTypes []vector.Type) *FilterOp {
	return &FilterOp{Cond: cond, types: inTypes, out: chunkPool{types: inTypes}}
}

// OutTypes implements StreamOp.
func (f *FilterOp) OutTypes() []vector.Type { return f.types }

// Process implements StreamOp.
func (f *FilterOp) Process(in *vector.Chunk, emit func(*vector.Chunk) error) error {
	if in.Len() == 0 {
		return nil
	}
	sel, err := f.Cond.Eval(in)
	if err != nil {
		return err
	}
	if sel.Type() != vector.TypeBool {
		return fmt.Errorf("filter condition of type %v", sel.Type())
	}
	out := f.out.get()
	defer f.out.put(out)
	bs := sel.Bools()
	for i := 0; i < in.Len(); i++ {
		if sel.IsNull(i) || !bs[i] {
			continue
		}
		out.AppendRowFrom(in, i)
	}
	if out.Len() == 0 {
		return nil
	}
	return emit(out)
}

// ProjectOp computes one output column per expression.
type ProjectOp struct {
	Exprs []expr.Expr
	types []vector.Type
	out   chunkPool
}

// NewProjectOp builds a projection operator.
func NewProjectOp(exprs []expr.Expr) *ProjectOp {
	types := make([]vector.Type, len(exprs))
	for i, e := range exprs {
		types[i] = e.Type()
	}
	return &ProjectOp{Exprs: exprs, types: types, out: chunkPool{types: types}}
}

// OutTypes implements StreamOp.
func (p *ProjectOp) OutTypes() []vector.Type { return p.types }

// Process implements StreamOp.
func (p *ProjectOp) Process(in *vector.Chunk, emit func(*vector.Chunk) error) error {
	if in.Len() == 0 {
		return nil
	}
	out := p.out.get()
	defer p.out.put(out)
	for j, e := range p.Exprs {
		v, err := e.Eval(in)
		if err != nil {
			return err
		}
		// Column references may return the input vector itself; chunks must
		// own their columns, so copy into the pooled column in that case.
		if _, shared := e.(*expr.Column); shared {
			cp := out.Col(j)
			for i := 0; i < v.Len(); i++ {
				cp.AppendFrom(v, i)
			}
			continue
		}
		*out.Col(j) = *v
	}
	out.SetLen(in.Len())
	return emit(out)
}
