package engine

import (
	"context"
	"errors"
	"testing"

	"github.com/riveterdb/riveter/internal/obs"
)

// TestExecutorMetrics verifies that an instrumented executor reports
// progress counters and per-pipeline durations into its registry.
func TestExecutorMetrics(t *testing.T) {
	cat := testDB(t)
	node := complexQuery(cat)
	reg := obs.NewRegistry()
	tr := obs.NewTrace("complex")

	pp := mustCompile(t, node, cat)
	ex := NewExecutor(pp, Options{Workers: 2, Obs: obs.Context{Metrics: reg, Trace: tr}})
	if _, err := ex.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	numPipes := int64(pp.NumPipelines())
	if got := reg.Counter(obs.MetricPipelinesDone).Value(); got != numPipes {
		t.Fatalf("pipelines_done = %d, want %d", got, numPipes)
	}
	if got := reg.Counter(obs.MetricMorsels).Value(); got <= 0 {
		t.Fatalf("morsel counter = %d, want > 0", got)
	}
	if got := reg.Counter(obs.MetricProcessedBytes).Value(); got != ex.Accountant().ProcessedBytes() {
		t.Fatalf("processed_bytes counter = %d, accountant says %d", got, ex.Accountant().ProcessedBytes())
	}
	if got := reg.DurationHistogram(obs.MetricPipelineDuration).Count(); got != numPipes {
		t.Fatalf("pipeline duration observations = %d, want %d", got, numPipes)
	}

	starts := tr.FindAll(obs.EvPipelineStart)
	finishes := tr.FindAll(obs.EvPipelineFinish)
	if int64(len(starts)) != numPipes || int64(len(finishes)) != numPipes {
		t.Fatalf("trace has %d starts / %d finishes, want %d each", len(starts), len(finishes), numPipes)
	}
	for _, f := range finishes {
		if f.Attr("duration") == nil {
			t.Fatalf("pipeline.finish missing duration attr: %+v", f)
		}
	}
}

// TestExecutorSuspendTraceEvents verifies the request→acknowledge pair for
// a process-level suspension and the suspends counter.
func TestExecutorSuspendTraceEvents(t *testing.T) {
	cat := testDB(t)
	node := complexQuery(cat)
	reg := obs.NewRegistry()
	tr := obs.NewTrace("complex")

	pp := mustCompile(t, node, cat)
	ex := NewExecutor(pp, Options{
		Workers: 2,
		Obs:     obs.Context{Metrics: reg, Trace: tr},
		// Fire deterministically at the first processed byte.
		AutoSuspend: AutoSuspend{Kind: KindProcess, AtProcessedBytes: 1},
	})
	_, err := ex.Run(context.Background())
	if !errors.Is(err, ErrSuspended) {
		t.Fatalf("Run = %v, want ErrSuspended", err)
	}

	req, ok := tr.Find(obs.EvSuspendRequested)
	if !ok {
		t.Fatal("missing suspend.requested event")
	}
	ack, ok := tr.Find(obs.EvSuspendAcked)
	if !ok {
		t.Fatal("missing suspend.acknowledged event")
	}
	if req.Seq >= ack.Seq {
		t.Fatalf("request (seq %d) must precede acknowledgement (seq %d)", req.Seq, ack.Seq)
	}
	if ack.Attr("kind") != "process" {
		t.Fatalf("ack kind = %v", ack.Attr("kind"))
	}
	if got := reg.Counter(obs.Kinded(obs.MetricSuspends, "process")).Value(); got != 1 {
		t.Fatalf("suspend counter = %d, want 1", got)
	}
}

// TestExecutorMetricsDisabled verifies the zero Obs context stays inert.
func TestExecutorMetricsDisabled(t *testing.T) {
	cat := testDB(t)
	node := complexQuery(cat)
	pp := mustCompile(t, node, cat)
	ex := NewExecutor(pp, Options{Workers: 2})
	if _, err := ex.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if o := ex.Obs(); o.Enabled() {
		t.Fatal("executor without Obs options must report a disabled context")
	}
}
