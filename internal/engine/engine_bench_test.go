package engine

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"github.com/riveterdb/riveter/internal/catalog"
	"github.com/riveterdb/riveter/internal/expr"
	"github.com/riveterdb/riveter/internal/plan"
	"github.com/riveterdb/riveter/internal/vector"
)

// Micro-benchmarks of the engine's core operators and of the suspension
// machinery itself (state serialization and round-trips).
//
// Reference allocs/op on the CI host before/after pooling the morsel-loop
// scratch (chunkPool in op.go, probeScratch in join.go, worker-local eval
// slices in agg.go):
//
//	BenchmarkScanFilter      1582 -> 699   (6.87 MB -> 2.68 MB per op)
//	BenchmarkHashJoin        3507 -> 1618  (13.53 MB -> 1.93 MB per op)
//	BenchmarkHashAggregate  13475 -> 13221 (dominated by group-table growth)

func benchCatalog(b *testing.B, rows int) *catalog.Catalog {
	b.Helper()
	cat := catalog.New()
	tbl, err := cat.Create("t", catalog.NewSchema(
		catalog.Col("k", vector.TypeInt64),
		catalog.Col("g", vector.TypeInt64),
		catalog.Col("v", vector.TypeFloat64),
		catalog.Col("s", vector.TypeString),
	))
	if err != nil {
		b.Fatal(err)
	}
	chunk := vector.NewChunk(tbl.Schema().Types())
	for i := 0; i < rows; i++ {
		if chunk.Full() {
			_ = tbl.AppendChunk(chunk)
			chunk.Reset()
		}
		chunk.AppendRowValues(
			vector.NewInt64(int64(i)),
			vector.NewInt64(int64(i%1024)),
			vector.NewFloat64(float64(i%1000)),
			vector.NewString([]string{"alpha", "beta", "gamma", "delta"}[i%4]),
		)
	}
	_ = tbl.AppendChunk(chunk)
	return cat
}

func benchRun(b *testing.B, cat *catalog.Catalog, node plan.Node, workers int) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pp, err := Compile(node, cat)
		if err != nil {
			b.Fatal(err)
		}
		ex := NewExecutor(pp, Options{Workers: workers})
		if _, err := ex.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScanFilter(b *testing.B) {
	cat := benchCatalog(b, 1<<18)
	bl := plan.NewBuilder(cat)
	t := bl.Scan("t", "k", "v")
	node := t.Filter(expr.Gt(t.Col("v"), expr.Float(500))).
		Agg(nil, plan.CountStar("n")).Node()
	benchRun(b, cat, node, 4)
}

func BenchmarkHashAggregate(b *testing.B) {
	cat := benchCatalog(b, 1<<18)
	bl := plan.NewBuilder(cat)
	t := bl.Scan("t", "g", "v")
	node := t.Agg([]string{"g"}, plan.Sum(t.Col("v"), "s"), plan.CountStar("n")).Node()
	benchRun(b, cat, node, 4)
}

func BenchmarkHashJoin(b *testing.B) {
	cat := benchCatalog(b, 1<<17)
	// Self-join on the group column: ~128 matches per probe row band.
	bl := plan.NewBuilder(cat)
	l := bl.Scan("t", "k", "g")
	r := bl.Scan("t", "k", "g").Rename("r.")
	rf := r.Filter(expr.Lt(r.Col("r.k"), expr.Int(1024)))
	node := l.Join(rf, plan.InnerJoin, []string{"g"}, []string{"r.k"}).
		Agg(nil, plan.CountStar("n")).Node()
	benchRun(b, cat, node, 4)
}

func BenchmarkSort(b *testing.B) {
	cat := benchCatalog(b, 1<<17)
	bl := plan.NewBuilder(cat)
	t := bl.Scan("t", "v", "k")
	node := t.Sort(plan.Desc("v"), plan.Asc("k")).Limit(1).Node()
	benchRun(b, cat, node, 4)
}

func BenchmarkTopN(b *testing.B) {
	cat := benchCatalog(b, 1<<18)
	bl := plan.NewBuilder(cat)
	t := bl.Scan("t", "v", "k")
	node := t.Sort(plan.Desc("v"), plan.Asc("k")).Limit(100).Node()
	benchRun(b, cat, node, 4)
}

// BenchmarkWorkerScaling measures morsel-parallel speedup of a scan+agg.
func BenchmarkWorkerScaling(b *testing.B) {
	cat := benchCatalog(b, 1<<19)
	bl := plan.NewBuilder(cat)
	t := bl.Scan("t", "g", "v")
	node := t.Agg([]string{"g"}, plan.Sum(t.Col("v"), "s")).Node()
	for _, w := range []int{1, 2, 4, 8} {
		// "workers=N", not "workers-N": bench_json.sh strips a trailing
		// "-<digits>" as the GOMAXPROCS suffix, which would collapse all
		// four sub-benchmarks into one ambiguous name.
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			benchRun(b, cat, node, w)
		})
	}
}

// BenchmarkPipelineCheckpointSaveLoad measures a full pipeline-level
// suspension state round-trip (serialize + deserialize).
func BenchmarkPipelineCheckpointSaveLoad(b *testing.B) {
	cat := benchCatalog(b, 1<<17)
	bl := plan.NewBuilder(cat)
	t := bl.Scan("t", "g", "v")
	node := t.Agg([]string{"g"}, plan.Sum(t.Col("v"), "s")).
		Sort(plan.Desc("s")).Node()
	pp, _ := Compile(node, cat)
	ex := NewExecutor(pp, Options{
		Workers: 4,
		OnBreaker: func(ev *BreakerEvent) BreakerAction {
			if ev.PipelineIdx == 0 {
				return ActionSuspend
			}
			return ActionContinue
		},
	})
	if _, err := ex.Run(context.Background()); !errors.Is(err, ErrSuspended) {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ex.SaveState(vector.NewEncoder(&buf)); err != nil {
		b.Fatal(err)
	}
	state := buf.Bytes()
	b.SetBytes(int64(len(state)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var out bytes.Buffer
		if err := ex.SaveState(vector.NewEncoder(&out)); err != nil {
			b.Fatal(err)
		}
		pp2, _ := Compile(node, cat)
		ex2 := NewExecutor(pp2, Options{Workers: 4})
		if err := ex2.LoadState(vector.NewDecoder(bytes.NewReader(out.Bytes()))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProcessSuspendResume measures a complete suspend->save->load->
// finish cycle relative to BenchmarkHashAggregate's clean run.
func BenchmarkProcessSuspendResume(b *testing.B) {
	cat := benchCatalog(b, 1<<17)
	bl := plan.NewBuilder(cat)
	t := bl.Scan("t", "g", "v")
	node := t.Agg([]string{"g"}, plan.Sum(t.Col("v"), "s")).Node()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pp, _ := Compile(node, cat)
		ex := NewExecutor(pp, Options{
			Workers:     4,
			AutoSuspend: AutoSuspend{Kind: KindProcess, AtProcessedBytes: 1 << 21},
		})
		_, err := ex.Run(context.Background())
		if err == nil {
			continue // finished before the trigger; still a measurement
		}
		if !errors.Is(err, ErrSuspended) {
			b.Fatal(err)
		}
		var buf bytes.Buffer
		if err := ex.SaveState(vector.NewEncoder(&buf)); err != nil {
			b.Fatal(err)
		}
		pp2, _ := Compile(node, cat)
		ex2 := NewExecutor(pp2, Options{Workers: 4})
		if err := ex2.LoadState(vector.NewDecoder(bytes.NewReader(buf.Bytes()))); err != nil {
			b.Fatal(err)
		}
		if _, err := ex2.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}
