package kernel

// HashBytes hashes an encoded aggregate group key. FNV-1a 64, written out
// inline so the hot probe path pays no hash.Hash allocation or interface
// call per row.
func HashBytes(b []byte) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, c := range b {
		h ^= uint64(c)
		h *= 0x100000001b3
	}
	return h
}
