// Package kernel holds the type-specialized, branch-reduced compute kernels
// behind the fused operator paths: arithmetic/comparison loops over raw
// slices, selection-vector gathers, grouped aggregate folds, and the bitmap
// helpers they share. The *_gen.go files are emitted by
// internal/engine/kernelgen — edit the generator, not the output — and CI's
// generate-check job fails on any drift between the two.
//
// Kernels are pure compute: no allocation, no interface dispatch, no
// knowledge of chunks or operators. Null handling follows the engine-wide
// invariant that a null row's backing storage holds the zero value; any
// kernel that can set null bits also zeroes the backing it masks.
package kernel

//go:generate go run ../kernelgen
