package kernel

import (
	"math"
	"testing"
)

// cmp3 mirrors the engine's three-way float comparison: NaN pairs order as
// equal. The generated float compare kernels must agree with it on every
// operator for every input pair.
func cmp3(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func TestFloatCompareKernelsMatchCmp3(t *testing.T) {
	nan := math.NaN()
	vals := []float64{-1, 0, math.Copysign(0, -1), 1, nan, math.Inf(1), math.Inf(-1)}
	var a, b []float64
	for _, x := range vals {
		for _, y := range vals {
			a = append(a, x)
			b = append(b, y)
		}
	}
	n := len(a)
	dst := make([]bool, n)
	ops := []struct {
		name string
		run  func()
		want func(c int) bool
	}{
		{"eq", func() { EqFloat64(dst, a, b) }, func(c int) bool { return c == 0 }},
		{"ne", func() { NeFloat64(dst, a, b) }, func(c int) bool { return c != 0 }},
		{"lt", func() { LtFloat64(dst, a, b) }, func(c int) bool { return c < 0 }},
		{"le", func() { LeFloat64(dst, a, b) }, func(c int) bool { return c <= 0 }},
		{"gt", func() { GtFloat64(dst, a, b) }, func(c int) bool { return c > 0 }},
		{"ge", func() { GeFloat64(dst, a, b) }, func(c int) bool { return c >= 0 }},
	}
	for _, op := range ops {
		op.run()
		for i := 0; i < n; i++ {
			if want := op.want(cmp3(a[i], b[i])); dst[i] != want {
				t.Errorf("%s(%v, %v) = %v, want %v", op.name, a[i], b[i], dst[i], want)
			}
		}
	}
}

func TestArithKernels(t *testing.T) {
	a := []int64{1, 2, 3, math.MaxInt64}
	b := []int64{10, -2, 0, 1}
	dst := make([]int64, 4)
	AddInt64(dst, a, b)
	if dst[0] != 11 || dst[1] != 0 || dst[2] != 3 || dst[3] != math.MinInt64 {
		t.Errorf("AddInt64 = %v", dst)
	}
	MulInt64Scalar(dst, a, 3)
	if dst[0] != 3 || dst[2] != 9 {
		t.Errorf("MulInt64Scalar = %v", dst)
	}
	SubInt64ScalarL(dst, 100, a)
	if dst[0] != 99 || dst[1] != 98 {
		t.Errorf("SubInt64ScalarL = %v", dst)
	}
}

func TestDivFloat64FoldsZeroDivisorsToNull(t *testing.T) {
	a := []float64{10, 20, 30, -5}
	b := []float64{2, 0, -3, 0}
	dst := make([]float64, 4)
	nulls := make([]uint64, WordsFor(4))
	DivFloat64(dst, a, b, nulls)
	if dst[0] != 5 || dst[2] != -10 {
		t.Errorf("DivFloat64 = %v", dst)
	}
	for i, wantNull := range []bool{false, true, false, true} {
		if NullAt(nulls, i) != wantNull {
			t.Errorf("row %d null = %v, want %v", i, !wantNull, wantNull)
		}
	}
	// Null rows must hold zero backing (the -0.0 from 0/-x included).
	if dst[1] != 0 || dst[3] != 0 || math.Signbit(dst[3]) {
		t.Errorf("null rows hold %v, %v; want +0, +0", dst[1], dst[3])
	}
}

// TestSelectTrueShortBitmap pins the covered-split: bitmaps shorter than
// WordsFor(n) mean the uncovered tail is non-null, and must not panic.
func TestSelectTrueShortBitmap(t *testing.T) {
	n := 130 // needs 3 words; give 1
	vals := make([]bool, n)
	for i := range vals {
		vals[i] = i%2 == 0
	}
	nulls := make([]uint64, 1)
	nulls[0] = 1 << 4 // row 4 null
	sel := SelectTrue(vals, nulls, n, nil)
	want := 0
	for i := 0; i < n; i += 2 {
		if i != 4 {
			want++
		}
	}
	if len(sel) != want {
		t.Errorf("len(sel) = %d, want %d", len(sel), want)
	}
	for _, s := range sel {
		if s == 4 || s%2 != 0 {
			t.Errorf("selected row %d", s)
		}
	}
	// Empty bitmap fast path.
	if got := len(SelectTrue(vals, nil, n, sel)); got != n/2 {
		t.Errorf("no-null select = %d, want %d", got, n/2)
	}
}

func TestGatherNullBitsShortBitmap(t *testing.T) {
	src := []uint64{1 << 3} // covers rows 0..63 only; row 3 null
	sel := []int32{3, 100, 64, 2}
	dst := make([]uint64, WordsFor(len(sel)))
	GatherNullBits(dst, src, sel)
	wantNull := []bool{true, false, false, false}
	for j, w := range wantNull {
		if NullAt(dst, j) != w {
			t.Errorf("gathered row %d null = %v, want %v", j, !w, w)
		}
	}
}

func TestZeroNulls(t *testing.T) {
	dst := []float64{1, 2, 3, 4}
	nulls := []uint64{0b1010}
	ZeroNullsFloat64(dst, nulls)
	if dst[0] != 1 || dst[1] != 0 || dst[2] != 3 || dst[3] != 0 {
		t.Errorf("ZeroNullsFloat64 = %v", dst)
	}
	// Bits beyond len(dst) must not panic.
	s := []string{"a", "b"}
	ZeroNullsString(s, []uint64{0b110})
	if s[0] != "a" || s[1] != "" {
		t.Errorf("ZeroNullsString = %v", s)
	}
}

func TestGroupedAggKernels(t *testing.T) {
	groups := []int32{0, 1, 0, 1, 0}
	vals := []int64{1, 2, 3, 4, 5}
	sumI := make([]int64, 2)
	sumF := make([]float64, 2)
	count := make([]int64, 2)
	SumInt64Update(groups, vals, sumI, sumF, count)
	if sumI[0] != 9 || sumI[1] != 6 || count[0] != 3 || count[1] != 2 {
		t.Errorf("SumInt64Update: sumI=%v count=%v", sumI, count)
	}
	if sumF[0] != 9 || sumF[1] != 6 {
		t.Errorf("SumInt64Update: sumF=%v", sumF)
	}
}

// TestGroupedAggKernelsShortBitmap feeds a null bitmap covering only a prefix
// of the rows: covered rows honor their bits, uncovered rows always fold.
func TestGroupedAggKernelsShortBitmap(t *testing.T) {
	n := 70 // one bitmap word covers 64 rows
	groups := make([]int32, n)
	vals := make([]int64, n)
	fvals := make([]float64, n)
	for i := range vals {
		vals[i] = int64(i)
		fvals[i] = float64(i)
	}
	nulls := []uint64{1 << 5} // row 5 null; rows 64..69 uncovered
	var wantSum, wantCount int64
	for i := 0; i < n; i++ {
		if i != 5 {
			wantSum += int64(i)
			wantCount++
		}
	}

	sumI := make([]int64, 1)
	sumF := make([]float64, 1)
	count := make([]int64, 1)
	SumInt64UpdateNulls(groups, vals, nulls, sumI, sumF, count)
	if sumI[0] != wantSum || count[0] != wantCount {
		t.Errorf("SumInt64UpdateNulls: sum=%d count=%d, want %d/%d", sumI[0], count[0], wantSum, wantCount)
	}

	sumF2 := make([]float64, 1)
	count2 := make([]int64, 1)
	SumFloat64UpdateNulls(groups, fvals, nulls, sumF2, count2)
	if sumF2[0] != float64(wantSum) || count2[0] != wantCount {
		t.Errorf("SumFloat64UpdateNulls: sum=%v count=%d", sumF2[0], count2[0])
	}

	count3 := make([]int64, 1)
	CountUpdateNulls(groups, nulls, count3)
	if count3[0] != wantCount {
		t.Errorf("CountUpdateNulls = %d, want %d", count3[0], wantCount)
	}
}

func TestBoolKernels(t *testing.T) {
	a := []bool{true, true, false, false}
	b := []bool{true, false, true, false}
	dst := make([]bool, 4)
	AndBool(dst, a, b)
	if dst[0] != true || dst[1] || dst[2] || dst[3] {
		t.Errorf("AndBool = %v", dst)
	}
	OrBool(dst, a, b)
	if !dst[0] || !dst[1] || !dst[2] || dst[3] {
		t.Errorf("OrBool = %v", dst)
	}
	NotBool(dst, a)
	if dst[0] || dst[1] || !dst[2] || !dst[3] {
		t.Errorf("NotBool = %v", dst)
	}
}

func TestGatherAndFill(t *testing.T) {
	src := []string{"a", "b", "c", "d"}
	sel := []int32{3, 1}
	dst := make([]string, 2)
	GatherString(dst, src, sel)
	if dst[0] != "d" || dst[1] != "b" {
		t.Errorf("GatherString = %v", dst)
	}
	f := make([]float64, 3)
	FillFloat64(f, 2.5)
	for _, x := range f {
		if x != 2.5 {
			t.Errorf("FillFloat64 = %v", f)
		}
	}
}

func TestHashBytes(t *testing.T) {
	if HashBytes(nil) != 0xcbf29ce484222325 {
		t.Error("empty hash must be the FNV offset basis")
	}
	if HashBytes([]byte("a")) == HashBytes([]byte("b")) {
		t.Error("distinct keys hash equal")
	}
}

func TestNullBitmapHelpers(t *testing.T) {
	if WordsFor(0) != 0 || WordsFor(1) != 1 || WordsFor(64) != 1 || WordsFor(65) != 2 {
		t.Error("WordsFor wrong")
	}
	nulls := make([]uint64, 2)
	SetNull(nulls, 70)
	if !NullAt(nulls, 70) || NullAt(nulls, 69) {
		t.Error("SetNull/NullAt wrong")
	}
	if NullAt(nulls[:1], 70) {
		t.Error("short bitmap must read as non-null")
	}
	dst := []uint64{1, 0}
	OrWords(dst, []uint64{2})
	if dst[0] != 3 || dst[1] != 0 {
		t.Error("OrWords wrong")
	}
	if AnyWord(dst) != true || AnyWord([]uint64{0, 0}) {
		t.Error("AnyWord wrong")
	}
}
