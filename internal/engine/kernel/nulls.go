package kernel

// WordsFor returns the number of 64-bit bitmap words covering n rows.
func WordsFor(n int) int { return (n + 63) >> 6 }

// NullAt reports whether bit i is set; a short bitmap means "not null".
func NullAt(nulls []uint64, i int) bool {
	w := i >> 6
	return w < len(nulls) && nulls[w]&(1<<(uint(i)&63)) != 0
}

// SetNull sets bit i. The bitmap must already cover row i.
func SetNull(nulls []uint64, i int) { nulls[i>>6] |= 1 << (uint(i) & 63) }

// OrWords ors src into dst; dst must be at least as long as src.
func OrWords(dst, src []uint64) {
	for i, w := range src {
		if w != 0 {
			dst[i] |= w
		}
	}
}

// AnyWord reports whether any bit is set in the bitmap.
func AnyWord(words []uint64) bool {
	for _, w := range words {
		if w != 0 {
			return true
		}
	}
	return false
}

// SelectTrue appends to sel (reset first) the indices i in [0, n) where
// vals[i] is true and the null bit is clear — SQL WHERE semantics, where
// NULL is not true.
func SelectTrue(vals []bool, nulls []uint64, n int, sel []int32) []int32 {
	sel = sel[:0]
	// Bitmaps may be shorter than WordsFor(n): rows past the covered prefix
	// are not null. Split the loop so the covered part checks bits and the
	// tail skips the bitmap entirely.
	covered := len(nulls) << 6
	if covered > n {
		covered = n
	}
	for i := 0; i < covered; i++ {
		if vals[i] && nulls[i>>6]&(1<<(uint(i)&63)) == 0 {
			sel = append(sel, int32(i))
		}
	}
	for i := covered; i < n; i++ {
		if vals[i] {
			sel = append(sel, int32(i))
		}
	}
	return sel
}

// GatherNullBits transfers src's null bits for the selected rows into dst,
// which must be zeroed and cover len(sel) rows.
func GatherNullBits(dst, src []uint64, sel []int32) {
	if len(src) == 0 {
		return
	}
	for j, s := range sel {
		w := int(s) >> 6
		if w < len(src) && src[w]&(1<<(uint(s)&63)) != 0 {
			dst[j>>6] |= 1 << (uint(j) & 63)
		}
	}
}
