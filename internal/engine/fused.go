package engine

import (
	"sync"

	"github.com/riveterdb/riveter/internal/engine/kernel"
	"github.com/riveterdb/riveter/internal/expr"
	"github.com/riveterdb/riveter/internal/vector"
)

// FusedOp is the kernel-backed replacement for a FilterOp, a ProjectOp, or a
// FilterOp immediately followed by a ProjectOp. The predicate and projection
// expressions are compiled columnar programs (internal/expr.Program), so one
// morsel flows through the whole filter+project stage as typed slices: the
// predicate evaluates into a reusable register, kernel.SelectTrue builds a
// selection vector, surviving rows are gathered once, and each projection
// evaluates into its own register that the output chunk aliases without
// copying. The planner only builds a FusedOp when every expression compiled;
// anything a program cannot express stays on the generic operator path.
//
// Emitted chunks alias program registers and, for passthrough columns, input
// columns. That is safe under the engine-wide contract that emitted chunks
// are never retained downstream (sinks copy rows out on Consume) — the
// registers are not reused until the next Process call on the same scratch.
type FusedOp struct {
	pred     *expr.Program   // nil = no filter stage
	projs    []*expr.Program // nil = passthrough (filter only)
	inTypes  []vector.Type
	outTypes []vector.Type
	scratch  sync.Pool // *fusedScratch; ops are shared across workers
}

// fusedScratch is the per-worker mutable state of a FusedOp: program
// instances (whose registers carry intermediate vectors), the selection
// vector, and the reusable gather/output chunks.
type fusedScratch struct {
	pred     *expr.Instance
	projs    []*expr.Instance
	sel      []int32
	gathered *vector.Chunk // survivors of a partial selection, in input types
	out      *vector.Chunk // projection output; cols alias registers
}

// NewFusedOp builds a fused filter/project operator. pred may be nil (pure
// projection), projs may be nil (pure filter); at least one must be set.
func NewFusedOp(pred *expr.Program, projs []*expr.Program, inTypes []vector.Type) *FusedOp {
	outTypes := inTypes
	if projs != nil {
		outTypes = make([]vector.Type, len(projs))
		for i, p := range projs {
			outTypes[i] = p.OutType()
		}
	}
	o := &FusedOp{pred: pred, projs: projs, inTypes: inTypes, outTypes: outTypes}
	o.scratch.New = func() any {
		s := &fusedScratch{}
		if pred != nil {
			s.pred = pred.NewInstance()
			s.gathered = vector.NewChunk(inTypes)
		}
		if projs != nil {
			s.projs = make([]*expr.Instance, len(projs))
			for i, p := range projs {
				s.projs[i] = p.NewInstance()
			}
			s.out = vector.NewChunk(outTypes)
		}
		return s
	}
	return o
}

// OutTypes returns the output column types.
func (o *FusedOp) OutTypes() []vector.Type { return o.outTypes }

// Process runs the fused stage over one morsel.
func (o *FusedOp) Process(in *vector.Chunk, emit func(*vector.Chunk) error) error {
	n := in.Len()
	if n == 0 {
		return nil
	}
	s := o.scratch.Get().(*fusedScratch)
	defer o.scratch.Put(s)
	src := in
	if o.pred != nil {
		pv, err := s.pred.Eval(in)
		if err != nil {
			return err
		}
		s.sel = kernel.SelectTrue(pv.Bools(), pv.NullWords(), n, s.sel)
		m := len(s.sel)
		if m == 0 {
			return nil
		}
		if m < n {
			gatherChunk(s.gathered, in, s.sel)
			src = s.gathered
		}
	}
	if o.projs == nil {
		return emit(src)
	}
	for j, inst := range s.projs {
		v, err := inst.Eval(src)
		if err != nil {
			return err
		}
		// Alias the register (or passthrough column) wholesale. The output
		// chunk's columns are always overwritten, never appended into, so
		// sharing backing with the source is safe.
		*s.out.Col(j) = *v
	}
	s.out.SetLen(src.Len())
	return emit(s.out)
}

// gatherChunk copies the selected rows of src into dst column by column with
// type-specialized gather kernels. Null backing stays zero because the source
// columns uphold the zero-backing-under-null invariant and gathers copy
// backing verbatim.
func gatherChunk(dst, src *vector.Chunk, sel []int32) {
	m := len(sel)
	for j, sv := range src.Cols() {
		dv := dst.Col(j)
		switch sv.Type() {
		case vector.TypeInt64, vector.TypeDate:
			kernel.GatherInt64(dv.ResizeInt64(m), sv.Int64s(), sel)
		case vector.TypeFloat64:
			kernel.GatherFloat64(dv.ResizeFloat64(m), sv.Float64s(), sel)
		case vector.TypeString:
			kernel.GatherString(dv.ResizeString(m), sv.Strings(), sel)
		case vector.TypeBool:
			kernel.GatherBool(dv.ResizeBool(m), sv.Bools(), sel)
		}
		if sv.HasNulls() {
			kernel.GatherNullBits(dv.EnsureNullWords(m), sv.NullWords(), sel)
		}
	}
	dst.SetLen(m)
}
