package engine

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"github.com/riveterdb/riveter/internal/catalog"
	"github.com/riveterdb/riveter/internal/expr"
	"github.com/riveterdb/riveter/internal/plan"
	"github.com/riveterdb/riveter/internal/vector"
)

// equivPlans is the plan matrix for kernels-on vs kernels-off equivalence:
// every fused path (filter, project, fused filter+project, flat aggregation)
// plus the generic fallbacks, over columns with and without nulls.
func equivPlans(cat *catalog.Catalog) map[string]plan.Node {
	mk := func(build func(b *plan.Builder) plan.Node) plan.Node {
		return build(plan.NewBuilder(cat))
	}
	return map[string]plan.Node{
		"filter-project-arith": mk(func(b *plan.Builder) plan.Node {
			e := b.Scan("emp", "id", "dept", "salary")
			return e.Filter(expr.And(
				expr.Lt(e.Col("id"), expr.Int(9000)),
				expr.Ge(expr.Mul(e.Col("salary"), expr.Float(1.1)), expr.Float(50)),
			)).Project([]string{"id", "adj", "ratio"},
				e.Col("id"),
				expr.Add(expr.Mul(e.Col("salary"), expr.Float(0.5)), expr.Float(7)),
				expr.Div(e.Col("salary"), expr.ToFloat(expr.Add(e.Col("dept"), expr.Int(1)))),
			).Node()
		}),
		"div-by-zero-nulls": mk(func(b *plan.Builder) plan.Node {
			e := b.Scan("emp", "id", "dept", "salary")
			return e.Project([]string{"id", "q"},
				e.Col("id"),
				expr.Div(e.Col("salary"), expr.ToFloat(e.Col("dept"))), // dept 0 -> NULL
			).Node()
		}),
		"string-filter-like": mk(func(b *plan.Builder) plan.Node {
			e := b.Scan("emp", "id", "name")
			return e.Filter(expr.And(
				expr.Like(e.Col("name"), "e%3"),
				expr.IsNotNull(e.Col("name")),
			)).Node()
		}),
		"case-project": mk(func(b *plan.Builder) plan.Node {
			e := b.Scan("emp", "id", "salary", "name")
			return e.Project([]string{"band", "name"},
				expr.When(expr.Gt(e.Col("salary"), expr.Float(500)), expr.Str("high"), expr.Str("low")),
				e.Col("name"),
			).Node()
		}),
		"agg-flat": mk(func(b *plan.Builder) plan.Node {
			e := b.Scan("emp", "id", "dept", "salary", "name")
			return e.Agg([]string{"dept"},
				plan.Sum(e.Col("salary"), "total"),
				plan.Avg(e.Col("salary"), "mean"),
				plan.Count(e.Col("name"), "named"), // null names are skipped
				plan.Min(e.Col("id"), "lo"),
				plan.Max(e.Col("id"), "hi"),
				plan.CountStar("n"),
			).Sort(plan.Asc("dept")).Node()
		}),
		"agg-global-empty": mk(func(b *plan.Builder) plan.Node {
			e := b.Scan("emp", "id", "salary")
			return e.Filter(expr.Lt(e.Col("id"), expr.Int(-1))).
				Agg(nil, plan.Sum(expr.Col(1, vector.TypeFloat64), "total"), plan.CountStar("n")).Node()
		}),
		"join-agg-topn": mk(func(b *plan.Builder) plan.Node {
			e := b.Scan("emp", "id", "dept", "salary")
			d := b.Scan("dept")
			return e.Join(d, plan.InnerJoin, []string{"dept"}, []string{"did"}).
				Agg([]string{"dname"},
					plan.Sum(expr.Col(2, vector.TypeFloat64), "total"),
					plan.CountStar("n")).
				Sort(plan.Desc("total"), plan.Asc("dname")).
				Limit(5).Node()
		}),
		"distinct-agg": mk(func(b *plan.Builder) plan.Node {
			e := b.Scan("emp", "id", "dept", "salary")
			return e.Agg([]string{"dept"},
				plan.CountDistinct(e.Col("salary"), "dsal")).
				Sort(plan.Asc("dept")).Node()
		}),
	}
}

// bufferBytes serializes a result's row buffer; byte equality means the two
// results are identical down to null bitmaps and float bit patterns.
func bufferBytes(t *testing.T, res *ResultSet) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := vector.NewEncoder(&buf)
	res.Buf.Save(enc)
	if err := enc.Err(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func runPlanWith(t *testing.T, cat *catalog.Catalog, n plan.Node, workers int, opts CompileOptions) *ResultSet {
	t.Helper()
	pp, err := CompileWith(n, cat, opts)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(pp, Options{Workers: workers})
	res, err := ex.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFusedKernelsByteIdenticalResults proves the tentpole contract: with a
// single worker (deterministic morsel order), the fused kernel plan and the
// generic plan produce byte-identical result buffers.
func TestFusedKernelsByteIdenticalResults(t *testing.T) {
	cat := testDB(t)
	for name, node := range equivPlans(cat) {
		t.Run(name, func(t *testing.T) {
			on := bufferBytes(t, runPlanWith(t, cat, node, 1, CompileOptions{}))
			off := bufferBytes(t, runPlanWith(t, cat, node, 1, CompileOptions{NoFusedKernels: true}))
			if !bytes.Equal(on, off) {
				t.Errorf("fused and generic result buffers differ (%d vs %d bytes)", len(on), len(off))
			}
		})
	}
}

// TestFusedKernelsMultiWorkerEquivalence checks the same matrix across
// worker counts, where float combine order may differ, via the tolerant
// canonical key.
func TestFusedKernelsMultiWorkerEquivalence(t *testing.T) {
	cat := testDB(t)
	for name, node := range equivPlans(cat) {
		t.Run(name, func(t *testing.T) {
			ref := runPlanWith(t, cat, node, 1, CompileOptions{NoFusedKernels: true}).SortedKey()
			for _, workers := range []int{2, 4} {
				if got := runPlanWith(t, cat, node, workers, CompileOptions{}).SortedKey(); got != ref {
					t.Errorf("fused %d-worker result differs from generic reference", workers)
				}
			}
		})
	}
}

// TestFusedCrossResume suspends mid-query under one sink implementation and
// resumes under the other, in both directions. Passing proves the flat
// aggregation sink's SaveLocal/SaveGlobal bytes are format-identical to the
// generic sink's — the checkpoint state formats are unchanged.
func TestFusedCrossResume(t *testing.T) {
	cat := testDB(t)
	node := complexQuery(cat)
	ref := runPlan(t, cat, node, 2).SortedKey()

	dirs := []struct {
		name            string
		suspend, resume CompileOptions
	}{
		{"fused-to-generic", CompileOptions{}, CompileOptions{NoFusedKernels: true}},
		{"generic-to-fused", CompileOptions{NoFusedKernels: true}, CompileOptions{}},
	}
	for _, d := range dirs {
		t.Run(d.name, func(t *testing.T) {
			resumed := 0
			for trial := 0; trial < 6; trial++ {
				pp1, err := CompileWith(node, cat, d.suspend)
				if err != nil {
					t.Fatal(err)
				}
				ex1 := NewExecutor(pp1, Options{Workers: 2})
				go func(delay int) {
					time.Sleep(time.Duration(delay) * 150 * time.Microsecond)
					ex1.RequestSuspend(KindProcess)
				}(trial)
				res, err := ex1.Run(context.Background())
				if err == nil {
					// Finished before the request landed; still verify.
					if got := res.SortedKey(); got != ref {
						t.Fatalf("trial %d: completed result differs", trial)
					}
					continue
				}
				if !errors.Is(err, ErrSuspended) {
					t.Fatalf("trial %d: err = %v", trial, err)
				}
				state := saveState(t, ex1)

				pp2, err := CompileWith(node, cat, d.resume)
				if err != nil {
					t.Fatal(err)
				}
				ex2 := NewExecutor(pp2, Options{Workers: 2})
				loadState(t, ex2, state)
				res2, err := ex2.Run(context.Background())
				if err != nil {
					t.Fatalf("trial %d resume: %v", trial, err)
				}
				if got := res2.SortedKey(); got != ref {
					t.Errorf("trial %d: cross-resumed result differs", trial)
				}
				resumed++
			}
			if resumed == 0 {
				t.Skip("timing: no trial suspended mid-query")
			}
		})
	}
}

// TestFusePipelineOpsMergesFilterProject pins the peephole: a compiled
// scan+filter+project pipeline carries one fused operator, not two.
func TestFusePipelineOpsMergesFilterProject(t *testing.T) {
	cat := testDB(t)
	b := plan.NewBuilder(cat)
	e := b.Scan("emp", "id", "salary")
	node := e.Filter(expr.Lt(e.Col("id"), expr.Int(100))).
		Project([]string{"v"}, expr.Mul(e.Col("salary"), expr.Float(2))).Node()
	pp, err := Compile(node, cat)
	if err != nil {
		t.Fatal(err)
	}
	p := pp.Pipelines[len(pp.Pipelines)-1]
	if len(p.Ops) != 1 {
		t.Fatalf("ops = %d, want 1 fused op", len(p.Ops))
	}
	f, ok := p.Ops[0].(*FusedOp)
	if !ok {
		t.Fatalf("op is %T, want *FusedOp", p.Ops[0])
	}
	if f.pred == nil || f.projs == nil {
		t.Error("merged op should carry both predicate and projections")
	}
	// And the off switch really is off.
	ppOff, err := CompileWith(node, cat, CompileOptions{NoFusedKernels: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ppOff.Pipelines[len(ppOff.Pipelines)-1].Ops {
		if _, ok := op.(*FusedOp); ok {
			t.Error("NoFusedKernels plan contains a FusedOp")
		}
	}
}
