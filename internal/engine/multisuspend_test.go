package engine

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"github.com/riveterdb/riveter/internal/plan"
	"github.com/riveterdb/riveter/internal/vector"
)

// TestMultipleSuspensionsPipelineLevel exercises the paper's §VI extension:
// a query suspended and resumed several times within one execution, each
// suspension at a later breaker.
func TestMultipleSuspensionsPipelineLevel(t *testing.T) {
	cat := testDB(t)
	node := complexQuery(cat)
	ref := runPlan(t, cat, node, 2).SortedKey()

	pp, err := Compile(node, cat)
	if err != nil {
		t.Fatal(err)
	}
	numBreakers := pp.NumPipelines() - 1

	// Chain: run -> suspend at breaker k -> save -> new executor -> load ->
	// continue, for every breaker in sequence.
	var state []byte
	for k := 0; k < numBreakers; k++ {
		ppk, _ := Compile(node, cat)
		target := k
		ex := NewExecutor(ppk, Options{
			Workers: 2,
			OnBreaker: func(ev *BreakerEvent) BreakerAction {
				if ev.PipelineIdx == target {
					return ActionSuspend
				}
				return ActionContinue
			},
		})
		if state != nil {
			loadState(t, ex, state)
		}
		_, err := ex.Run(context.Background())
		if !errors.Is(err, ErrSuspended) {
			t.Fatalf("suspension %d: err = %v", k, err)
		}
		state = saveState(t, ex)
	}

	// Final resume runs to completion.
	ppf, _ := Compile(node, cat)
	ex := NewExecutor(ppf, Options{Workers: 2})
	loadState(t, ex, state)
	res, err := ex.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.SortedKey() != ref {
		t.Error("result after chained suspensions differs from clean run")
	}
}

// TestMultipleSuspensionsProcessLevel alternates process-level suspensions
// with partial progress.
func TestMultipleSuspensionsProcessLevel(t *testing.T) {
	cat := testDB(t)
	node := complexQuery(cat)
	ref := runPlan(t, cat, node, 2).SortedKey()

	var state []byte
	for round := 0; round < 4; round++ {
		pp, _ := Compile(node, cat)
		// Suspend after a modest amount of additional progress.
		ex := NewExecutor(pp, Options{
			Workers:     2,
			AutoSuspend: AutoSuspend{Kind: KindProcess, AtProcessedBytes: int64(round+1) * 200_000},
		})
		if state != nil {
			loadState(t, ex, state)
		}
		res, err := ex.Run(context.Background())
		if err == nil {
			// Completed: compare and stop.
			if res.SortedKey() != ref {
				t.Fatalf("round %d: completed result differs", round)
			}
			return
		}
		if !errors.Is(err, ErrSuspended) {
			t.Fatalf("round %d: err = %v", round, err)
		}
		state = saveState(t, ex)
	}
	pp, _ := Compile(node, cat)
	ex := NewExecutor(pp, Options{Workers: 2})
	loadState(t, ex, state)
	res, err := ex.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.SortedKey() != ref {
		t.Error("result after repeated process suspensions differs")
	}
}

// TestQuiesceAndContinue exercises ClearSuspension: a process-level barrier
// used as a decision point, after which execution continues in place.
func TestQuiesceAndContinue(t *testing.T) {
	cat := testDB(t)
	node := complexQuery(cat)
	ref := runPlan(t, cat, node, 2).SortedKey()

	pp, _ := Compile(node, cat)
	ex := NewExecutor(pp, Options{Workers: 2})
	ex.RequestSuspend(KindProcess)
	_, err := ex.Run(context.Background())
	if !errors.Is(err, ErrSuspended) {
		t.Fatalf("err = %v", err)
	}
	prog := ex.CurrentProgress()
	if prog.NumPipelines != pp.NumPipelines() {
		t.Errorf("progress = %+v", prog)
	}
	if n := ex.EstimateNextBreakerCheckpointBytes(); n < 0 {
		t.Errorf("next-breaker estimate = %d", n)
	}

	ex.ClearSuspension()
	res, err := ex.Run(context.Background())
	if err != nil {
		t.Fatalf("continue after quiesce: %v", err)
	}
	if res.SortedKey() != ref {
		t.Error("result after quiesce-and-continue differs")
	}
}

// TestQuiesceThenPipelineSuspend is the controller's pipeline path: quiesce,
// decide, continue with a pipeline-level suspension armed.
func TestQuiesceThenPipelineSuspend(t *testing.T) {
	cat := testDB(t)
	node := complexQuery(cat)
	ref := runPlan(t, cat, node, 2).SortedKey()

	pp, _ := Compile(node, cat)
	ex := NewExecutor(pp, Options{Workers: 2})
	ex.RequestSuspend(KindProcess)
	if _, err := ex.Run(context.Background()); !errors.Is(err, ErrSuspended) {
		t.Fatal(err)
	}
	ex.ClearSuspension()
	ex.RequestSuspend(KindPipeline)
	_, err := ex.Run(context.Background())
	if !errors.Is(err, ErrSuspended) {
		t.Fatalf("pipeline suspension after quiesce: %v", err)
	}
	if info := ex.Suspended(); info.Kind != KindPipeline {
		t.Fatalf("kind = %v", info.Kind)
	}
	state := saveState(t, ex)
	pp2, _ := Compile(node, cat)
	ex2 := NewExecutor(pp2, Options{Workers: 3})
	loadState(t, ex2, state)
	res, err := ex2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.SortedKey() != ref {
		t.Error("result differs after quiesce->pipeline-suspend->resume")
	}
}

// TestWorkerErrorPropagation ensures an operator failure inside a worker
// surfaces as an error, not a hang or partial result.
func TestWorkerErrorPropagation(t *testing.T) {
	cat := testDB(t)
	b := plan.NewBuilder(cat)
	e := b.Scan("emp", "id", "name")
	// LIKE over BIGINT fails at evaluation time (constructed manually to
	// bypass builder checks).
	bad := &plan.Filter{
		Child: e.Node(),
		Cond:  badLike{},
	}
	pp, err := Compile(bad, cat)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(pp, Options{Workers: 4})
	if _, err := ex.Run(context.Background()); err == nil {
		t.Fatal("worker error must propagate")
	}
}

// badLike is an expression that always fails to evaluate.
type badLike struct{}

func (badLike) Type() vector.Type { return vector.TypeBool }
func (badLike) Eval(*vector.Chunk) (*vector.Vector, error) {
	return nil, fmt.Errorf("injected failure")
}
func (badLike) String() string { return "bad" }

// TestAutoSuspendFiresOnce verifies the one-shot semantics across resumes.
func TestAutoSuspendFiresOnce(t *testing.T) {
	cat := testDB(t)
	node := complexQuery(cat)
	pp, _ := Compile(node, cat)
	ex := NewExecutor(pp, Options{
		Workers:     2,
		AutoSuspend: AutoSuspend{Kind: KindProcess, AtProcessedBytes: 1},
	})
	if _, err := ex.Run(context.Background()); !errors.Is(err, ErrSuspended) {
		t.Fatal(err)
	}
	if ex.AutoSuspendFiredAt().IsZero() {
		t.Fatal("auto-suspend fire time missing")
	}
	// Continue in place: the auto trigger must not re-fire.
	ex.ClearSuspension()
	if _, err := ex.Run(context.Background()); err != nil {
		t.Fatalf("continue: %v", err)
	}
}
