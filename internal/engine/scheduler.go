package engine

import (
	"context"
	"sort"
	"sync/atomic"
	"time"

	"github.com/riveterdb/riveter/internal/obs"
)

// The DAG scheduler. One Run call builds one schedule, which owns all
// scheduling state and runs on the Run goroutine; workers and finalizers
// report back over a channel, so every scheduling decision — launching a
// pipeline, repartitioning worker slots, marking a pipeline done, invoking
// the breaker hook, capturing a suspension — happens on a single goroutine.
// That serialization is what keeps breaker events and quiesce captures
// consistent while several pipelines are in flight.
//
// Worker budget: the total number of live worker goroutines never exceeds
// Options.Workers. A pipeline launches with one worker and is topped up from
// free slots; a combine/finalize occupies one slot so a wide DAG cannot
// oversubscribe the host with concurrent finalizes.

// runningPipe is one pipeline currently executing.
type runningPipe struct {
	pi      int
	p       *Pipeline
	morsels int64
	cursor  atomic.Int64 // shared morsel cursor, CAS-claimed, never exceeds morsels
	// locals holds one local sink state per worker ever assigned, in
	// assignment order; Combine consumes them in this order.
	locals []LocalState
	// outstanding counts workers still running.
	outstanding int
	// stopped records that a worker exited on a stop signal, so the pipeline
	// quiesced at a morsel boundary instead of exhausting its morsels.
	stopped bool
	// finalizing marks the pipeline's combine/finalize running off-loop.
	finalizing bool
	started    time.Time
	// prior is the pipeline-elapsed time restored from a capture.
	prior time.Duration
}

// elapsedNow is the pipeline's accumulated execution time.
func (rp *runningPipe) elapsedNow() time.Duration {
	return rp.prior + time.Since(rp.started)
}

// workerExit reports one worker goroutine finishing.
type workerExit struct {
	pi      int
	stopped bool
	err     error
}

// finalExit reports one pipeline's combine+finalize finishing.
type finalExit struct {
	pi  int
	err error
}

// schedEvent is one message from a worker or finalizer to the scheduler.
type schedEvent struct {
	w *workerExit
	f *finalExit
}

// schedule is the per-Run DAG scheduler state.
type schedule struct {
	ex    *Executor
	ctx   context.Context
	start time.Time

	events  chan schedEvent
	running map[int]*runningPipe
	free    int // unassigned worker slots
	maxConc int // max concurrently running pipelines (0 = unbounded)

	// captures collects the in-flight pipelines quiesced by a process-level
	// barrier.
	captures []*inflightPipe

	firstErr    error
	draining    bool // stop launching work; drain outstanding goroutines
	procSuspend bool // a process-level suspension is being honored
	pipeSuspend bool // a breaker committed a pipeline-level suspension
}

func newSchedule(ex *Executor, ctx context.Context, start time.Time) *schedule {
	return &schedule{
		ex:      ex,
		ctx:     ctx,
		start:   start,
		events:  make(chan schedEvent, ex.opts.Workers+1),
		running: make(map[int]*runningPipe),
		free:    ex.opts.Workers,
		maxConc: ex.opts.MaxConcurrentPipelines,
	}
}

// run drives the DAG to completion, suspension, error, or cancellation.
// restored holds the in-flight pipelines of a resumed process-level
// checkpoint (or of a quiesce continued via ClearSuspension); they relaunch
// first, each with exactly its captured worker-local states.
func (s *schedule) run(restored []*inflightPipe) error {
	// A process-level request armed before Run started is honored at once:
	// the pre-launch instant is a valid morsel boundary of every pipeline.
	s.checkProcessRequest()
	if s.draining {
		s.captures = restored
	} else {
		for _, c := range restored {
			s.launch(c)
		}
		s.assign()
	}
	for len(s.running) > 0 {
		ev := <-s.events
		switch {
		case ev.w != nil:
			s.onWorkerExit(ev.w)
		case ev.f != nil:
			s.onFinalized(ev.f)
		}
		if !s.draining {
			s.checkProcessRequest()
			s.assign()
		}
	}
	return s.finish()
}

// checkProcessRequest starts a process-level drain when a KindProcess
// suspension request is pending: no further work is launched and every
// running worker stops at its next morsel boundary.
func (s *schedule) checkProcessRequest() {
	if s.draining {
		return
	}
	if SuspendKind(s.ex.suspendReq.Load()) == KindProcess {
		s.draining = true
		s.procSuspend = true
	}
}

// fail records the first error and aborts all in-flight work.
func (s *schedule) fail(err error) {
	if s.firstErr == nil {
		s.firstErr = err
	}
	s.draining = true
	s.ex.stopAll.Store(true)
}

// launch registers a pipeline as running. With a capture, the pipeline
// resumes from its cursor with exactly its captured worker-local states;
// otherwise it starts fresh with a single worker (assign tops it up).
func (s *schedule) launch(c *inflightPipe) *runningPipe {
	ex := s.ex
	p := ex.pp.Pipelines[c.pi]
	rp := &runningPipe{pi: c.pi, p: p, morsels: p.Source.MorselCount(), started: time.Now()}
	rp.cursor.Store(c.cursor)
	rp.prior = c.elapsed
	s.running[c.pi] = rp
	if ex.met.runningPipes != nil {
		ex.met.runningPipes.Set(int64(len(s.running)))
	}
	if ex.tr != nil {
		ex.tr.Event(obs.EvPipelineStart,
			obs.A("pipeline", c.pi), obs.A("workers", maxInt(1, len(c.locals))),
			obs.A("morsels", rp.morsels), obs.A("cursor", c.cursor))
	}
	if len(c.locals) == 0 {
		s.addWorker(rp, nil)
	} else {
		for _, ls := range c.locals {
			s.addWorker(rp, ls)
		}
	}
	return rp
}

// addWorker assigns one worker slot to the pipeline. A nil local gets a
// fresh one from the sink.
func (s *schedule) addWorker(rp *runningPipe, local LocalState) {
	if local == nil {
		local = rp.p.Sink.MakeLocal()
	}
	rp.locals = append(rp.locals, local)
	rp.outstanding++
	s.free--
	go func() {
		stopped, err := s.ex.runWorker(s.ctx, rp.pi, rp.p, &rp.cursor, rp.morsels, local)
		s.events <- schedEvent{w: &workerExit{pi: rp.pi, stopped: stopped, err: err}}
	}()
}

// nextReady returns the lowest-index pipeline that is not done, not running,
// and has all dependencies finalized. The compile order is a valid serial
// schedule, so with MaxConcurrentPipelines==1 this reproduces the pre-DAG
// serial execution order exactly.
func (s *schedule) nextReady() (int, bool) {
	ex := s.ex
	for pi := range ex.pp.Pipelines {
		if ex.done[pi] {
			continue
		}
		if _, ok := s.running[pi]; ok {
			continue
		}
		ready := true
		for _, d := range ex.pp.Pipelines[pi].Deps {
			if !ex.done[d] {
				ready = false
				break
			}
		}
		if ready {
			return pi, true
		}
	}
	return 0, false
}

// topUpTarget picks the running pipeline that benefits most from one more
// worker: the one with the most unclaimed morsels per assigned worker.
// Pipelines quiescing, finalizing, or without enough remaining morsels to
// feed another worker are skipped.
func (s *schedule) topUpTarget() *runningPipe {
	var best *runningPipe
	var bestShare float64
	pis := make([]int, 0, len(s.running))
	for pi := range s.running {
		pis = append(pis, pi)
	}
	sort.Ints(pis)
	for _, pi := range pis {
		rp := s.running[pi]
		if rp.finalizing || rp.stopped || rp.outstanding >= s.ex.opts.Workers {
			continue
		}
		remaining := rp.morsels - rp.cursor.Load()
		if remaining <= int64(rp.outstanding) {
			continue // every remaining morsel already has a worker to claim it
		}
		share := float64(remaining) / float64(rp.outstanding)
		if best == nil || share > bestShare {
			best, bestShare = rp, share
		}
	}
	return best
}

// assign partitions free worker slots: first launch ready pipelines (lowest
// index first, one worker each, respecting the concurrency cap), then top up
// running pipelines that still have unclaimed morsels.
func (s *schedule) assign() {
	// checkProcessRequest may have started a drain just before this call;
	// launching or topping up then would add worker locals past the
	// Options.Workers budget and delay the suspension it is honoring.
	for s.free > 0 && !s.draining {
		if s.maxConc == 0 || len(s.running) < s.maxConc {
			if pi, ok := s.nextReady(); ok {
				s.launch(&inflightPipe{pi: pi})
				continue
			}
		}
		rp := s.topUpTarget()
		if rp == nil {
			return
		}
		s.addWorker(rp, nil)
		if s.ex.tr != nil {
			s.ex.tr.Event(obs.EvPipelineScale,
				obs.A("pipeline", rp.pi), obs.A("workers", rp.outstanding))
		}
	}
}

// onWorkerExit accounts one worker leaving its pipeline; when it was the
// last, the pipeline either finalizes (morsels exhausted) or quiesces
// (stopped at a barrier).
func (s *schedule) onWorkerExit(w *workerExit) {
	rp := s.running[w.pi]
	rp.outstanding--
	s.free++
	if w.err != nil {
		s.fail(w.err)
	}
	if w.stopped {
		rp.stopped = true
	}
	if rp.outstanding > 0 {
		return
	}
	if s.firstErr != nil {
		delete(s.running, w.pi)
		return
	}
	if s.ctx.Err() != nil {
		s.draining = true
		delete(s.running, w.pi)
		return
	}
	if rp.stopped {
		delete(s.running, w.pi)
		s.onPipelineQuiesced(rp)
		return
	}
	// Morsels exhausted: combine + finalize off-loop, holding one slot.
	rp.finalizing = true
	s.free--
	go func() {
		s.events <- schedEvent{f: &finalExit{pi: rp.pi, err: s.finalize(rp)}}
	}()
}

// finalize merges the pipeline's worker-local states in assignment order and
// finalizes its sink. Runs off the scheduler goroutine; the sink is not yet
// visible as done, so nothing else touches it.
func (s *schedule) finalize(rp *runningPipe) error {
	for _, ls := range rp.locals {
		if err := rp.p.Sink.Combine(ls); err != nil {
			return err
		}
	}
	return rp.p.Sink.Finalize()
}

// onPipelineQuiesced handles a pipeline whose workers all stopped at a
// morsel boundary. Under a stop-all barrier (pipeline-level suspension
// committed at a sibling's breaker) the partial progress is discarded —
// pipeline-level checkpoints carry only finalized state. Otherwise this is
// the process-level barrier and the pipeline's exact mid-flight state is
// captured.
func (s *schedule) onPipelineQuiesced(rp *runningPipe) {
	ex := s.ex
	if ex.met.runningPipes != nil {
		ex.met.runningPipes.Set(int64(len(s.running)))
	}
	if ex.stopAll.Load() {
		if ex.tr != nil {
			ex.tr.Event(obs.EvPipelineQuiesced,
				obs.A("pipeline", rp.pi), obs.A("cursor", rp.cursor.Load()),
				obs.A("captured", false))
		}
		return
	}
	s.draining = true
	s.procSuspend = true
	s.captures = append(s.captures, &inflightPipe{
		pi:      rp.pi,
		cursor:  rp.cursor.Load(),
		locals:  rp.locals,
		elapsed: rp.elapsedNow(),
	})
	if ex.tr != nil {
		ex.tr.Event(obs.EvPipelineQuiesced,
			obs.A("pipeline", rp.pi), obs.A("cursor", rp.cursor.Load()),
			obs.A("captured", true))
	}
}

// onFinalized marks a pipeline done and runs its breaker. The done bit flips
// under ex.mu after Finalize returned, so measureState and external readers
// only ever observe fully finalized sinks.
func (s *schedule) onFinalized(f *finalExit) {
	ex := s.ex
	rp := s.running[f.pi]
	delete(s.running, f.pi)
	s.free++
	if ex.met.runningPipes != nil {
		ex.met.runningPipes.Set(int64(len(s.running)))
	}
	if f.err != nil {
		s.fail(f.err)
		return
	}
	dur := rp.elapsedNow()
	ex.mu.Lock()
	ex.done[f.pi] = true
	ex.pipeTimes[f.pi] = dur
	ex.mu.Unlock()
	ex.met.pipesDone.Inc()
	ex.met.pipeDur.ObserveDuration(dur)
	if ex.met.liveState != nil {
		ex.met.liveState.Set(ex.liveStateBytes())
	}
	if ex.tr != nil {
		ex.tr.Event(obs.EvPipelineFinish,
			obs.A("pipeline", f.pi), obs.A("duration", dur), obs.A("morsels", rp.morsels))
	}
	if s.draining {
		return
	}
	if f.pi == len(ex.pp.Pipelines)-1 {
		return // result pipeline: no breaker decision after the result sink
	}
	if ex.breakerSuspend(f.pi, s.start) {
		// Commit a pipeline-level suspension: barrier the remaining running
		// pipelines and discard their partial progress.
		s.draining = true
		s.pipeSuspend = true
		ex.stopAll.Store(true)
	}
}

// finish resolves the drained schedule into Run's outcome.
func (s *schedule) finish() error {
	ex := s.ex
	if ex.met.runningPipes != nil {
		ex.met.runningPipes.Set(0)
	}
	if s.firstErr != nil {
		return s.firstErr
	}
	if err := s.ctx.Err(); err != nil {
		return err
	}
	switch {
	case s.procSuspend:
		if len(s.captures) == 0 && ex.allDone() {
			// The barrier caught nothing: every pipeline finalized before it
			// could capture in-flight work. The query is complete and the
			// suspension request is moot.
			return nil
		}
		sort.Slice(s.captures, func(i, j int) bool { return s.captures[i].pi < s.captures[j].pi })
		ex.mu.Lock()
		ex.inflight = s.captures
		elapsed := ex.elapsed + time.Since(s.start)
		info := &SuspendInfo{Kind: KindProcess, Elapsed: elapsed, Pipeline: ex.firstPendingLocked()}
		if len(s.captures) > 0 {
			info.Pipeline = s.captures[0].pi
			info.Cursor = s.captures[0].cursor
		}
		for _, c := range s.captures {
			info.InFlight = append(info.InFlight, InFlightPipeline{
				Pipeline: c.pi, Cursor: c.cursor, Workers: len(c.locals), Elapsed: c.elapsed,
			})
		}
		ex.suspended = info
		ex.mu.Unlock()
		ex.met.suspends[KindProcess].Inc()
		if ex.tr != nil {
			ex.tr.Event(obs.EvSuspendAcked,
				obs.A("kind", "process"), obs.A("pipeline", info.Pipeline),
				obs.A("cursor", info.Cursor), obs.A("elapsed", info.Elapsed),
				obs.A("in_flight", len(info.InFlight)))
		}
		return ErrSuspended
	case s.pipeSuspend:
		ex.mu.Lock()
		ex.inflight = nil
		elapsed := ex.elapsed + time.Since(s.start)
		info := &SuspendInfo{Kind: KindPipeline, Pipeline: ex.firstPendingLocked(), Elapsed: elapsed}
		ex.suspended = info
		ex.mu.Unlock()
		ex.met.suspends[KindPipeline].Inc()
		if ex.tr != nil {
			ex.tr.Event(obs.EvSuspendAcked,
				obs.A("kind", "pipeline"), obs.A("pipeline", info.Pipeline),
				obs.A("elapsed", info.Elapsed))
		}
		return ErrSuspended
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
