package engine

import (
	"sort"

	"github.com/riveterdb/riveter/internal/plan"
	"github.com/riveterdb/riveter/internal/vector"
)

// sortRows stores rows as sort-key columns followed by payload columns, so
// comparisons never re-evaluate key expressions.
//
// SortSink is the pipeline breaker for ORDER BY: workers buffer rows
// locally, Combine concatenates, and Finalize sorts the global buffer and
// materializes it in order. TopNSink fuses ORDER BY + LIMIT: local states
// keep at most a bounded number of candidate rows.
type SortSink struct {
	keys     []plan.SortKey
	keyTypes []vector.Type
	payTypes []vector.Type
	rowTypes []vector.Type

	buf   *RowBuffer // keys ++ payload, unsorted until Finalize
	out   *RowBuffer // payload only, sorted
	final bool
}

// NewSortSink builds a sort sink for the given keys over input types.
func NewSortSink(keys []plan.SortKey, inTypes []vector.Type) *SortSink {
	kt := make([]vector.Type, len(keys))
	for i, k := range keys {
		kt[i] = k.Expr.Type()
	}
	rt := append(append([]vector.Type{}, kt...), inTypes...)
	return &SortSink{keys: keys, keyTypes: kt, payTypes: inTypes, rowTypes: rt, buf: NewRowBuffer(rt)}
}

type sortLocal struct {
	buf *RowBuffer
}

// MakeLocal implements Sink.
func (s *SortSink) MakeLocal() LocalState { return &sortLocal{buf: NewRowBuffer(s.rowTypes)} }

// appendKeyed appends chunk rows with evaluated key prefix into dst.
func appendKeyed(dst *RowBuffer, keys []plan.SortKey, c *vector.Chunk) error {
	keyVecs := make([]*vector.Vector, len(keys))
	for i, k := range keys {
		v, err := k.Expr.Eval(c)
		if err != nil {
			return err
		}
		keyVecs[i] = v
	}
	for i := 0; i < c.Len(); i++ {
		t := dst.tail()
		for k, kv := range keyVecs {
			t.Col(k).AppendFrom(kv, i)
		}
		for j := 0; j < c.NumCols(); j++ {
			t.Col(len(keyVecs)+j).AppendFrom(c.Col(j), i)
		}
		t.SetLen(t.Len() + 1)
		dst.rows++
	}
	return nil
}

// Consume implements Sink.
func (s *SortSink) Consume(ls LocalState, c *vector.Chunk) error {
	return appendKeyed(ls.(*sortLocal).buf, s.keys, c)
}

// Combine implements Sink.
func (s *SortSink) Combine(ls LocalState) error {
	s.buf.Concat(ls.(*sortLocal).buf)
	return nil
}

// sortData holds the key columns of a keyed buffer flattened into
// contiguous arrays, so the sort's comparator never touches boxed values.
type sortData struct {
	keys  []plan.SortKey
	ints  [][]int64
	flts  [][]float64
	strs  [][]string
	bools [][]bool
	nulls [][]bool
	types []vector.Type
}

// flattenKeys extracts the first nKeys columns of buf into flat arrays.
func flattenKeys(buf *RowBuffer, keys []plan.SortKey) *sortData {
	n := int(buf.Rows())
	sd := &sortData{
		keys:  keys,
		ints:  make([][]int64, len(keys)),
		flts:  make([][]float64, len(keys)),
		strs:  make([][]string, len(keys)),
		bools: make([][]bool, len(keys)),
		nulls: make([][]bool, len(keys)),
		types: make([]vector.Type, len(keys)),
	}
	for k, key := range keys {
		t := key.Expr.Type()
		sd.types[k] = t
		nulls := make([]bool, n)
		switch t {
		case vector.TypeInt64, vector.TypeDate:
			sd.ints[k] = make([]int64, n)
		case vector.TypeFloat64:
			sd.flts[k] = make([]float64, n)
		case vector.TypeString:
			sd.strs[k] = make([]string, n)
		case vector.TypeBool:
			sd.bools[k] = make([]bool, n)
		}
		r := 0
		for ci := 0; ci < buf.NumChunks(); ci++ {
			col := buf.Chunk(ci).Col(k)
			m := col.Len()
			for i := 0; i < m; i++ {
				if col.IsNull(i) {
					nulls[r] = true
				} else {
					switch t {
					case vector.TypeInt64, vector.TypeDate:
						sd.ints[k][r] = col.Int64s()[i]
					case vector.TypeFloat64:
						sd.flts[k][r] = col.Float64s()[i]
					case vector.TypeString:
						sd.strs[k][r] = col.Strings()[i]
					case vector.TypeBool:
						sd.bools[k][r] = col.Bools()[i]
					}
				}
				r++
			}
		}
		sd.nulls[k] = nulls
	}
	return sd
}

// compare orders rows a and b; NULLs sort first ascending.
func (sd *sortData) compare(a, b int64) int {
	for k := range sd.keys {
		an, bn := sd.nulls[k][a], sd.nulls[k][b]
		var c int
		switch {
		case an && bn:
			c = 0
		case an:
			c = -1
		case bn:
			c = 1
		default:
			switch sd.types[k] {
			case vector.TypeInt64, vector.TypeDate:
				c = cmpOrdered(sd.ints[k][a], sd.ints[k][b])
			case vector.TypeFloat64:
				c = cmpOrdered(sd.flts[k][a], sd.flts[k][b])
			case vector.TypeString:
				c = cmpOrdered(sd.strs[k][a], sd.strs[k][b])
			case vector.TypeBool:
				var ai, bi int8
				if sd.bools[k][a] {
					ai = 1
				}
				if sd.bools[k][b] {
					bi = 1
				}
				c = cmpOrdered(ai, bi)
			}
		}
		if c == 0 {
			continue
		}
		if sd.keys[k].Desc {
			return -c
		}
		return c
	}
	return 0
}

func cmpOrdered[T int64 | float64 | string | int8](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// sortPerm returns the stable sort permutation of the keyed buffer.
func sortPerm(buf *RowBuffer, keys []plan.SortKey) []int64 {
	n := buf.Rows()
	perm := make([]int64, n)
	for i := range perm {
		perm[i] = int64(i)
	}
	sd := flattenKeys(buf, keys)
	sort.SliceStable(perm, func(i, j int) bool {
		return sd.compare(perm[i], perm[j]) < 0
	})
	return perm
}

// materializeSorted builds a payload-only buffer following perm.
func materializeSorted(buf *RowBuffer, nKeys int, payTypes []vector.Type, perm []int64) *RowBuffer {
	out := NewRowBuffer(payTypes)
	for _, r := range perm {
		ci, ri := buf.Locate(r)
		src := buf.Chunk(ci)
		t := out.tail()
		for j := range payTypes {
			t.Col(j).AppendFrom(src.Col(nKeys+j), ri)
		}
		t.SetLen(t.Len() + 1)
		out.rows++
	}
	return out
}

// Finalize implements Sink.
func (s *SortSink) Finalize() error {
	perm := sortPerm(s.buf, s.keys)
	s.out = materializeSorted(s.buf, len(s.keys), s.payTypes, perm)
	s.buf = NewRowBuffer(s.rowTypes) // release pre-sort copy
	s.final = true
	return nil
}

// Buffer implements BufferedSink.
func (s *SortSink) Buffer() *RowBuffer { return s.out }

// SaveGlobal implements Sink.
func (s *SortSink) SaveGlobal(enc *vector.Encoder) error {
	s.out.Save(enc)
	return enc.Err()
}

// LoadGlobal implements Sink.
func (s *SortSink) LoadGlobal(dec *vector.Decoder) error {
	out, err := LoadRowBuffer(dec)
	if err != nil {
		return err
	}
	s.out = out
	s.final = true
	return nil
}

// SaveLocal implements Sink.
func (s *SortSink) SaveLocal(ls LocalState, enc *vector.Encoder) error {
	ls.(*sortLocal).buf.Save(enc)
	return enc.Err()
}

// LoadLocal implements Sink.
func (s *SortSink) LoadLocal(dec *vector.Decoder) (LocalState, error) {
	buf, err := LoadRowBuffer(dec)
	if err != nil {
		return nil, err
	}
	return &sortLocal{buf: buf}, nil
}

// MemBytes implements Sink.
func (s *SortSink) MemBytes() int64 {
	var b int64
	if s.buf != nil {
		b += s.buf.MemBytes()
	}
	if s.out != nil {
		b += s.out.MemBytes()
	}
	return b
}

// LocalMemBytes implements Sink.
func (s *SortSink) LocalMemBytes(ls LocalState) int64 {
	return ls.(*sortLocal).buf.MemBytes()
}

// TopNSink fuses Sort+Limit: each local keeps at most trimThreshold rows
// (periodically sort-trimmed to limit), and Finalize sorts and cuts the
// global set to the limit.
type TopNSink struct {
	*SortSink
	Limit  int64
	Offset int64
}

// NewTopNSink builds a top-N sink.
func NewTopNSink(keys []plan.SortKey, inTypes []vector.Type, limit, offset int64) *TopNSink {
	return &TopNSink{SortSink: NewSortSink(keys, inTypes), Limit: limit, Offset: offset}
}

// Consume implements Sink; it trims the local buffer when it grows past 4x
// the limit to bound memory.
func (s *TopNSink) Consume(ls LocalState, c *vector.Chunk) error {
	l := ls.(*sortLocal)
	if err := appendKeyed(l.buf, s.keys, c); err != nil {
		return err
	}
	keep := s.Offset + s.Limit
	if keep > 0 && l.buf.Rows() > 4*keep+int64(vector.ChunkCapacity) {
		l.buf = trimTopN(l.buf, s.keys, s.rowTypes, keep)
	}
	return nil
}

// trimTopN sorts the keyed buffer and keeps the first `keep` keyed rows.
func trimTopN(buf *RowBuffer, keys []plan.SortKey, rowTypes []vector.Type, keep int64) *RowBuffer {
	perm := sortPerm(buf, keys)
	if int64(len(perm)) > keep {
		perm = perm[:keep]
	}
	out := NewRowBuffer(rowTypes)
	for _, r := range perm {
		ci, ri := buf.Locate(r)
		out.AppendRowFrom(buf.Chunk(ci), ri)
	}
	return out
}

// Finalize implements Sink.
func (s *TopNSink) Finalize() error {
	perm := sortPerm(s.buf, s.keys)
	lo := s.Offset
	if lo > int64(len(perm)) {
		lo = int64(len(perm))
	}
	hi := lo + s.Limit
	if s.Limit < 0 || hi > int64(len(perm)) {
		hi = int64(len(perm))
	}
	perm = perm[lo:hi]
	s.out = materializeSorted(s.buf, len(s.keys), s.payTypes, perm)
	s.buf = NewRowBuffer(s.rowTypes)
	s.final = true
	return nil
}
