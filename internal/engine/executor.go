package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/riveterdb/riveter/internal/obs"
	"github.com/riveterdb/riveter/internal/vector"
)

// SuspendKind identifies the suspension granularity.
type SuspendKind int32

// Suspension kinds. KindNone means no suspension is pending.
const (
	KindNone SuspendKind = iota
	// KindPipeline suspends at the next pipeline breaker (after the current
	// pipeline finalizes) — the paper's pipeline-level strategy.
	KindPipeline
	// KindProcess suspends at the next morsel boundary of every worker —
	// the paper's process-level (CRIU-style) strategy.
	KindProcess
)

// ErrSuspended is returned by Run when execution stopped due to a suspension
// request; the executor then holds the state to be checkpointed.
var ErrSuspended = errors.New("engine: execution suspended")

// BreakerAction is the decision returned by the breaker callback.
type BreakerAction int

// Breaker decisions.
const (
	ActionContinue BreakerAction = iota
	ActionSuspend
)

// BreakerEvent describes the pipeline breaker the executor just crossed; it
// is handed to the OnBreaker callback, where Riveter's cost model decides
// whether to suspend (paper §III-C: decisions are made when query execution
// reaches a pipeline breaker). Under the DAG scheduler breaker events are
// serialized on the scheduler goroutine, so the callback always observes a
// consistent set of finalized pipelines even while sibling pipelines keep
// claiming morsels.
type BreakerEvent struct {
	ex *Executor

	// PipelineIdx is the pipeline that just finalized.
	PipelineIdx int
	// NumPipelines is the total pipeline count of the plan.
	NumPipelines int
	// Elapsed is total execution time so far (across resumes).
	Elapsed time.Duration
	// PipelineTimes holds the duration of each finalized pipeline.
	PipelineTimes []time.Duration
}

// MeasurePipelineCheckpointBytes serializes the would-be pipeline-level
// checkpoint to a counting writer and returns its exact size — the paper's
// "serialize the intermediate data in binary format, which allows us to
// determine its size".
func (e *BreakerEvent) MeasurePipelineCheckpointBytes() int64 {
	return e.ex.measureState(KindPipeline)
}

// SavePipelineState serializes a pipeline-level snapshot of the executor
// state as of this breaker. Safe mid-run because breaker events run on the
// scheduler goroutine and a pipeline-kind snapshot carries only the done
// bitmap and finalized sink globals — immutable once their pipeline
// finalized — never in-flight worker locals. The snapshot is loadable by
// LoadState under any worker count; the write-ahead lineage log appends
// one per breaker as its sealed resume points.
func (e *BreakerEvent) SavePipelineState(enc *vector.Encoder) error {
	return e.ex.savePipelineStateAt(enc, e.Elapsed)
}

// LiveStateBytes returns the resident size of live operator state.
func (e *BreakerEvent) LiveStateBytes() int64 { return e.ex.liveStateBytes() }

// ProcessImageBytes returns the modeled CRIU image size at this moment.
func (e *BreakerEvent) ProcessImageBytes() int64 {
	return e.ex.acct.ImageBytes(e.ex.liveStateBytes())
}

// AutoSuspend configures a progress-triggered suspension: once the
// accountant's processed-bytes counter crosses the threshold, workers raise
// the suspension request themselves at the next morsel boundary. This gives
// deterministic "suspend at ~X% of execution" semantics independent of
// wall-clock timer granularity.
type AutoSuspend struct {
	Kind             SuspendKind
	AtProcessedBytes int64
}

// Options configure an Executor.
type Options struct {
	// Workers is the total worker-goroutine budget (>=1). The DAG scheduler
	// partitions it across all concurrently running pipelines.
	Workers int
	// MaxConcurrentPipelines caps how many pipelines may run at once.
	// 0 means no cap (bounded only by Workers and DAG readiness); 1 degrades
	// to the pre-DAG serial schedule: pipelines execute one at a time in
	// compile order, which is what the equivalence property tests pin against.
	MaxConcurrentPipelines int
	// Accountant models process-image growth; nil gets a default.
	Accountant *Accountant
	// OnBreaker, when set, is invoked synchronously after every pipeline
	// finalize. Returning ActionSuspend triggers a pipeline-level
	// suspension at this breaker.
	OnBreaker func(*BreakerEvent) BreakerAction
	// OnMorsel, when set, is invoked after each morsel is fully processed,
	// with the pipeline's index and the claimed morsel index. It is called
	// concurrently from worker goroutines and must be cheap — the
	// write-ahead lineage log uses it to buffer morsel-progress records.
	OnMorsel func(pipeline int, morsel int64)
	// AutoSuspend, when its threshold is positive, arms a one-shot
	// progress-triggered suspension.
	AutoSuspend AutoSuspend
	// Obs attaches metrics and tracing. The zero value disables both; the
	// hot morsel loop then pays only two thread-local integer adds.
	Obs obs.Context
	// Compile carries the plan-lowering options for paths that compile on
	// the caller's behalf (the strategy restore functions): a restored
	// rider rejoins its shared scan hubs only when ScanShare is threaded
	// through here. Executor construction itself ignores it.
	Compile CompileOptions
	// Live, when set, is a shared live-execution gauge: Run increments it
	// on entry and decrements on exit (including suspension). The fold
	// subsystem's scan hubs consult it for the single-rider fast path —
	// while at most one execution is live, shared-window maintenance is
	// pure overhead, so hubs serve private base reads instead.
	Live *atomic.Int64
}

// execMetrics holds the executor's metric handles, resolved once at
// construction so the run loop never touches the registry. All handles are
// nil (and drop recordings) when no registry is attached.
type execMetrics struct {
	morsels      *obs.Counter
	processed    *obs.Counter
	pipesDone    *obs.Counter
	breakers     *obs.Counter
	suspends     [3]*obs.Counter // indexed by SuspendKind
	pipeDur      *obs.Histogram
	liveState    *obs.Gauge
	runningPipes *obs.Gauge
}

func resolveExecMetrics(r *obs.Registry) execMetrics {
	if r == nil {
		return execMetrics{}
	}
	return execMetrics{
		morsels:   r.Counter(obs.MetricMorsels),
		processed: r.Counter(obs.MetricProcessedBytes),
		pipesDone: r.Counter(obs.MetricPipelinesDone),
		breakers:  r.Counter(obs.MetricBreakers),
		suspends: [3]*obs.Counter{
			KindPipeline: r.Counter(obs.Kinded(obs.MetricSuspends, "pipeline")),
			KindProcess:  r.Counter(obs.Kinded(obs.MetricSuspends, "process")),
		},
		pipeDur:      r.DurationHistogram(obs.MetricPipelineDuration),
		liveState:    r.Gauge(obs.MetricLiveStateBytes),
		runningPipes: r.Gauge(obs.MetricRunningPipelines),
	}
}

// inflightPipe is the captured mid-flight execution state of one pipeline:
// its morsel cursor, the worker-local sink states accumulated so far, and the
// time already spent inside it. The executor holds a set of these — either
// restored from a checkpoint before Run, or captured by a process-level
// barrier across every pipeline the DAG scheduler had running.
type inflightPipe struct {
	pi      int
	cursor  int64
	locals  []LocalState
	elapsed time.Duration
}

// Executor runs a physical plan with morsel-driven parallelism and supports
// the three suspension paths: context cancellation (redo), pipeline-level
// suspension at breakers, and process-level suspension at morsel boundaries.
// Pipelines whose dependencies have finalized run concurrently, sharing the
// Options.Workers goroutine budget.
type Executor struct {
	pp   *PhysicalPlan
	opts Options
	acct *Accountant
	met  execMetrics
	tr   *obs.Trace

	suspendReq  atomic.Int32
	autoFired   atomic.Bool
	autoFiredAt atomic.Int64 // UnixNano of the auto-suspend trigger
	// stopAll barriers every worker at its next morsel boundary regardless of
	// pipeline: set on worker error (abort) and when a breaker commits a
	// pipeline-level suspension (sibling progress is discarded, see schedule).
	stopAll atomic.Bool

	mu         sync.Mutex
	done       []bool
	pipeTimes  []time.Duration
	inflight   []*inflightPipe // captured or restored mid-flight pipelines
	elapsed    time.Duration   // accumulated across resumes
	suspended  *SuspendInfo
	ranAlready bool
}

// InFlightPipeline summarizes one pipeline interrupted mid-flight by a
// process-level suspension.
type InFlightPipeline struct {
	// Pipeline is the interrupted pipeline's index.
	Pipeline int
	// Cursor is its morsel cursor (morsels claimed so far).
	Cursor int64
	// Workers is how many worker-local states were captured.
	Workers int
	// Elapsed is the time spent inside this pipeline so far.
	Elapsed time.Duration
}

// SuspendInfo describes the captured suspension.
type SuspendInfo struct {
	Kind SuspendKind
	// Pipeline is the lowest-index pending pipeline: the first in-flight one
	// (process-level) or the next to run (pipeline-level).
	Pipeline int
	// Cursor is the morsel cursor of that pipeline (process-level).
	Cursor int64
	// Elapsed is the total execution time consumed so far.
	Elapsed time.Duration
	// InFlight lists every pipeline interrupted mid-flight, ascending by
	// index. Empty for pipeline-level suspensions and for process-level
	// barriers that landed between pipelines.
	InFlight []InFlightPipeline
}

// NewExecutor builds an executor for a compiled plan.
func NewExecutor(pp *PhysicalPlan, opts Options) *Executor {
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if opts.MaxConcurrentPipelines < 0 {
		opts.MaxConcurrentPipelines = 0
	}
	acct := opts.Accountant
	if acct == nil {
		acct = NewAccountant()
	}
	return &Executor{
		pp:        pp,
		opts:      opts,
		acct:      acct,
		met:       resolveExecMetrics(opts.Obs.Metrics),
		tr:        opts.Obs.Trace,
		done:      make([]bool, len(pp.Pipelines)),
		pipeTimes: make([]time.Duration, len(pp.Pipelines)),
	}
}

// Plan returns the physical plan.
func (ex *Executor) Plan() *PhysicalPlan { return ex.pp }

// Workers returns the configured worker count.
func (ex *Executor) Workers() int { return ex.opts.Workers }

// Accountant returns the memory accountant.
func (ex *Executor) Accountant() *Accountant { return ex.acct }

// Obs returns the executor's observability context (zero when disabled).
func (ex *Executor) Obs() obs.Context { return obs.Context{Metrics: ex.opts.Obs.Metrics, Trace: ex.tr} }

// RequestSuspend asks the executor to suspend at the next opportunity of the
// given kind. Safe to call from any goroutine. A later request overrides an
// earlier one only if none has been consumed yet.
func (ex *Executor) RequestSuspend(kind SuspendKind) {
	ex.suspendReq.Store(int32(kind))
	ex.tr.Event(obs.EvSuspendRequested, obs.A("kind", kindName(kind)))
}

// kindName renders a SuspendKind for trace attributes.
func kindName(k SuspendKind) string {
	switch k {
	case KindPipeline:
		return "pipeline"
	case KindProcess:
		return "process"
	default:
		return "none"
	}
}

// Suspended returns the suspension capture after Run returned ErrSuspended.
func (ex *Executor) Suspended() *SuspendInfo {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	return ex.suspended
}

// AutoSuspendFiredAt returns when the progress-triggered suspension request
// fired, or the zero time if it has not.
func (ex *Executor) AutoSuspendFiredAt() time.Time {
	n := ex.autoFiredAt.Load()
	if n == 0 {
		return time.Time{}
	}
	return time.Unix(0, n)
}

// ClearSuspension discards a process-level suspension capture and lets Run
// continue the query in place (the in-flight pipelines' locals and morsel
// cursors are retained). It turns a suspension barrier into a quiesce point:
// Riveter uses it to run the cost model against a consistent executor state
// and then keep going when the chosen strategy is not an immediate
// process-level suspension.
func (ex *Executor) ClearSuspension() {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	ex.suspended = nil
	ex.suspendReq.Store(int32(KindNone))
}

// PipelineProgress is the progress of one in-flight pipeline.
type PipelineProgress struct {
	// Pipeline is the pipeline's index.
	Pipeline int
	// DoneMorsels and TotalMorsels cover this pipeline.
	DoneMorsels, TotalMorsels int64
	// Elapsed is the time spent inside this pipeline so far.
	Elapsed time.Duration
}

// eta extrapolates the pipeline's remaining time from its per-morsel rate.
func (p PipelineProgress) eta() time.Duration {
	if p.DoneMorsels <= 0 || p.TotalMorsels <= p.DoneMorsels {
		return 0
	}
	perMorsel := float64(p.Elapsed) / float64(p.DoneMorsels)
	return time.Duration(perMorsel * float64(p.TotalMorsels-p.DoneMorsels))
}

// Progress describes how far execution has advanced; used by the cost model
// to estimate the time to the next pipeline breaker.
type Progress struct {
	// Pipeline is the lowest-index pipeline currently in flight (or next to
	// execute).
	Pipeline int
	// NumPipelines is the plan's pipeline count.
	NumPipelines int
	// DoneMorsels and TotalMorsels cover that pipeline.
	DoneMorsels, TotalMorsels int64
	// PipelineElapsed is the time spent in that pipeline so far.
	PipelineElapsed time.Duration
	// InFlight holds the progress of every in-flight pipeline (ascending by
	// index) when the executor quiesced with several pipelines running.
	InFlight []PipelineProgress
}

// NextBreakerEta estimates the time until the next pipeline breaker fires.
// With several pipelines in flight that is the minimum of their extrapolated
// remaining times — whichever finalizes first reaches its breaker first.
func (p Progress) NextBreakerEta() time.Duration {
	if len(p.InFlight) == 0 {
		return PipelineProgress{
			DoneMorsels: p.DoneMorsels, TotalMorsels: p.TotalMorsels, Elapsed: p.PipelineElapsed,
		}.eta()
	}
	min := time.Duration(-1)
	for _, f := range p.InFlight {
		if e := f.eta(); min < 0 || e < min {
			min = e
		}
	}
	if min < 0 {
		return 0
	}
	return min
}

// PipelineSuspendDiscard estimates the in-flight work a pipeline-level
// suspension would throw away: when the first breaker fires, every sibling
// pipeline is quiesced and its partial progress discarded (pipeline-level
// checkpoints carry only finalized state, which is what keeps them resumable
// under a different worker count). The estimate charges the elapsed time of
// every in-flight pipeline except the one expected to reach its breaker
// first.
func (p Progress) PipelineSuspendDiscard() time.Duration {
	if len(p.InFlight) <= 1 {
		return 0
	}
	first, firstEta := 0, time.Duration(-1)
	for i, f := range p.InFlight {
		if e := f.eta(); firstEta < 0 || e < firstEta {
			first, firstEta = i, e
		}
	}
	var lost time.Duration
	for i, f := range p.InFlight {
		if i != first {
			lost += f.Elapsed
		}
	}
	return lost
}

// firstPendingLocked returns the lowest-index pipeline not yet finalized
// (len(Pipelines) when all are done). Callers hold ex.mu.
func (ex *Executor) firstPendingLocked() int {
	for i, d := range ex.done {
		if !d {
			return i
		}
	}
	return len(ex.pp.Pipelines)
}

// allDone reports whether every pipeline has finalized.
func (ex *Executor) allDone() bool {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	return ex.firstPendingLocked() == len(ex.pp.Pipelines)
}

// CurrentProgress returns the execution progress snapshot. Meaningful when
// the executor is quiesced (suspended) or between pipelines.
func (ex *Executor) CurrentProgress() Progress {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	p := Progress{Pipeline: ex.firstPendingLocked(), NumPipelines: len(ex.pp.Pipelines)}
	if len(ex.inflight) > 0 {
		for _, c := range ex.inflight {
			pl := ex.pp.Pipelines[c.pi]
			p.InFlight = append(p.InFlight, PipelineProgress{
				Pipeline:    c.pi,
				DoneMorsels: c.cursor,
				// In-flight pipelines had all dependencies finalized, so the
				// source's morsel count is well defined.
				TotalMorsels: pl.Source.MorselCount(),
				Elapsed:      c.elapsed,
			})
		}
		first := p.InFlight[0]
		p.Pipeline = first.Pipeline
		p.DoneMorsels = first.DoneMorsels
		p.TotalMorsels = first.TotalMorsels
		p.PipelineElapsed = first.Elapsed
		return p
	}
	if p.Pipeline < len(ex.pp.Pipelines) {
		pl := ex.pp.Pipelines[p.Pipeline]
		ready := true
		for _, d := range pl.Deps {
			if !ex.done[d] {
				ready = false
				break
			}
		}
		if ready {
			p.TotalMorsels = pl.Source.MorselCount()
		}
	}
	return p
}

// EstimateNextBreakerCheckpointBytes approximates the pipeline-level
// checkpoint size at the next breaker: the finalized live states pending
// pipelines still need, plus the worker-local state of every in-flight
// pipeline (whose breakers will merge it into the global state). Local
// states are priced by serializing them to a counting writer — the
// checkpoint's L_s depends on serialized bytes, which for hash tables are
// far below their resident size. Call only while the executor is quiesced.
func (ex *Executor) EstimateNextBreakerCheckpointBytes() int64 {
	ex.mu.Lock()
	inflight := ex.inflight
	ex.mu.Unlock()
	n := ex.measureState(KindPipeline)
	var cw countingWriter
	enc := vector.NewEncoder(&cw)
	for _, c := range inflight {
		sink := ex.pp.Pipelines[c.pi].Sink
		for _, ls := range c.locals {
			_ = sink.SaveLocal(ls, enc)
		}
	}
	return n + cw.n
}

// Elapsed returns total execution time accumulated so far (across resumes).
func (ex *Executor) Elapsed() time.Duration {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	return ex.elapsed
}

// PipelineTimes returns a copy of the per-pipeline durations recorded so far.
func (ex *Executor) PipelineTimes() []time.Duration {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	out := make([]time.Duration, 0, len(ex.pipeTimes))
	for i, d := range ex.pipeTimes {
		if ex.done[i] {
			out = append(out, d)
		}
	}
	return out
}

// DonePipelines returns how many pipelines have finalized.
func (ex *Executor) DonePipelines() int {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	n := 0
	for _, d := range ex.done {
		if d {
			n++
		}
	}
	return n
}

// Run executes the plan to completion, a suspension, or cancellation.
// It may be called again after LoadState to continue a resumed query.
//
// Scheduling is DAG-driven: every pipeline whose dependencies have finalized
// is eligible to run, and the Options.Workers goroutine budget is partitioned
// across the running set (see schedule in scheduler.go). Serial per-pipeline
// execution is the MaxConcurrentPipelines==1 special case.
func (ex *Executor) Run(ctx context.Context) (*ResultSet, error) {
	ex.mu.Lock()
	if ex.suspended != nil {
		ex.mu.Unlock()
		return nil, fmt.Errorf("engine: executor already suspended; build a new executor and LoadState to resume")
	}
	start := time.Now()
	restored := ex.inflight
	ex.inflight = nil
	ex.ranAlready = true
	ex.mu.Unlock()
	ex.stopAll.Store(false)
	if ex.opts.Live != nil {
		ex.opts.Live.Add(1)
		defer ex.opts.Live.Add(-1)
	}

	defer func() {
		ex.mu.Lock()
		ex.elapsed += time.Since(start)
		ex.mu.Unlock()
	}()

	if err := newSchedule(ex, ctx, start).run(restored); err != nil {
		return nil, err
	}
	res := &ResultSet{Schema: ex.pp.OutSchema, Buf: ex.pp.Result().Buffer()}
	return res, nil
}

// breakerSuspend runs the breaker hook after pipeline pi finalized and
// reports whether a pipeline-level suspension should trigger. Called only
// from the scheduler goroutine, so breaker events are totally ordered.
func (ex *Executor) breakerSuspend(pi int, runStart time.Time) bool {
	ex.met.breakers.Inc()
	if ex.tr != nil {
		ex.tr.Event(obs.EvBreaker, obs.A("pipeline", pi))
	}
	// An explicit pipeline-level request wins.
	if SuspendKind(ex.suspendReq.Load()) == KindPipeline {
		ex.suspendReq.Store(int32(KindNone))
		return true
	}
	if ex.opts.OnBreaker == nil {
		return false
	}
	ex.mu.Lock()
	times := make([]time.Duration, 0, pi+1)
	for i := range ex.pp.Pipelines {
		if ex.done[i] {
			times = append(times, ex.pipeTimes[i])
		}
	}
	elapsed := ex.elapsed + time.Since(runStart)
	ex.mu.Unlock()
	ev := &BreakerEvent{
		ex:            ex,
		PipelineIdx:   pi,
		NumPipelines:  len(ex.pp.Pipelines),
		Elapsed:       elapsed,
		PipelineTimes: times,
	}
	return ex.opts.OnBreaker(ev) == ActionSuspend
}

// claimMorsel claims the next unprocessed morsel index with a CAS so the
// cursor never exceeds the morsel count — DoneMorsels and suspend captures
// are exact without downstream clamping.
func claimMorsel(cursor *atomic.Int64, morsels int64) (int64, bool) {
	for {
		cur := cursor.Load()
		if cur >= morsels {
			return 0, false
		}
		if cursor.CompareAndSwap(cur, cur+1) {
			return cur, true
		}
	}
}

// runWorker is one morsel-pulling worker loop. It returns stopped=true when
// it exited at a morsel boundary due to a stop signal (context cancellation,
// a process-level suspension request, or the stop-all barrier) rather than
// because the pipeline's morsels were exhausted.
func (ex *Executor) runWorker(ctx context.Context, pi int, p *Pipeline, cursor *atomic.Int64, morsels int64, local LocalState) (stopped bool, err error) {
	chunk := vector.NewChunk(p.Source.OutTypes())
	chain := makeChain(p.Ops, func(c *vector.Chunk) error {
		return p.Sink.Consume(local, c)
	})
	auto := ex.opts.AutoSuspend
	// Metrics are accumulated worker-locally and flushed once on exit so the
	// morsel loop pays two plain integer adds, not shared atomics.
	var doneMorsels, doneBytes int64
	defer func() {
		ex.met.morsels.Add(doneMorsels)
		ex.met.processed.Add(doneBytes)
	}()
	for {
		if ctx.Err() != nil {
			return true, nil // cancellation surfaces via ctx.Err in Run
		}
		if auto.AtProcessedBytes > 0 && !ex.autoFired.Load() &&
			ex.acct.ProcessedBytes() >= auto.AtProcessedBytes {
			if ex.autoFired.CompareAndSwap(false, true) {
				ex.autoFiredAt.Store(time.Now().UnixNano())
				ex.RequestSuspend(auto.Kind)
			}
		}
		if ex.stopAll.Load() || SuspendKind(ex.suspendReq.Load()) == KindProcess {
			// An exhausted pipeline quiesces as finished, not as stopped: its
			// workers already consumed every morsel, so letting it finalize
			// shrinks the capture and keeps the in-flight worker-local count
			// within the Options.Workers budget (a pipeline that lost a worker
			// to morsel exhaustion would otherwise be captured with more
			// locals than live workers).
			return cursor.Load() < morsels, nil
		}
		idx, ok := claimMorsel(cursor, morsels)
		if !ok {
			return false, nil
		}
		n, err := p.Source.ReadMorsel(idx, chunk)
		if err != nil {
			return false, err
		}
		if n == 0 {
			continue
		}
		mb := chunk.MemBytes()
		ex.acct.AddProcessed(mb)
		doneMorsels++
		doneBytes += mb
		if err := chain(chunk); err != nil {
			return false, err
		}
		if ex.opts.OnMorsel != nil {
			ex.opts.OnMorsel(pi, idx)
		}
	}
}

// makeChain composes streaming operators into a single push function.
func makeChain(ops []StreamOp, final func(*vector.Chunk) error) func(*vector.Chunk) error {
	h := final
	for i := len(ops) - 1; i >= 0; i-- {
		op, next := ops[i], h
		h = func(c *vector.Chunk) error { return op.Process(c, next) }
	}
	return h
}

// liveStateBytes sums the resident size of all finalized sink global states
// and the captured locals of every in-flight pipeline.
func (ex *Executor) liveStateBytes() int64 {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	var b int64
	for i, p := range ex.pp.Pipelines {
		if ex.done[i] {
			b += p.Sink.MemBytes()
		}
	}
	for _, c := range ex.inflight {
		p := ex.pp.Pipelines[c.pi]
		for _, ls := range c.locals {
			b += p.Sink.LocalMemBytes(ls)
		}
	}
	return b
}
