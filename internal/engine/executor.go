package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/riveterdb/riveter/internal/obs"
	"github.com/riveterdb/riveter/internal/vector"
)

// SuspendKind identifies the suspension granularity.
type SuspendKind int32

// Suspension kinds. KindNone means no suspension is pending.
const (
	KindNone SuspendKind = iota
	// KindPipeline suspends at the next pipeline breaker (after the current
	// pipeline finalizes) — the paper's pipeline-level strategy.
	KindPipeline
	// KindProcess suspends at the next morsel boundary of every worker —
	// the paper's process-level (CRIU-style) strategy.
	KindProcess
)

// ErrSuspended is returned by Run when execution stopped due to a suspension
// request; the executor then holds the state to be checkpointed.
var ErrSuspended = errors.New("engine: execution suspended")

// BreakerAction is the decision returned by the breaker callback.
type BreakerAction int

// Breaker decisions.
const (
	ActionContinue BreakerAction = iota
	ActionSuspend
)

// BreakerEvent describes the pipeline breaker the executor just crossed; it
// is handed to the OnBreaker callback, where Riveter's cost model decides
// whether to suspend (paper §III-C: decisions are made when query execution
// reaches a pipeline breaker).
type BreakerEvent struct {
	ex *Executor

	// PipelineIdx is the pipeline that just finalized.
	PipelineIdx int
	// NumPipelines is the total pipeline count of the plan.
	NumPipelines int
	// Elapsed is total execution time so far (across resumes).
	Elapsed time.Duration
	// PipelineTimes holds the duration of each finalized pipeline.
	PipelineTimes []time.Duration
}

// MeasurePipelineCheckpointBytes serializes the would-be pipeline-level
// checkpoint to a counting writer and returns its exact size — the paper's
// "serialize the intermediate data in binary format, which allows us to
// determine its size".
func (e *BreakerEvent) MeasurePipelineCheckpointBytes() int64 {
	return e.ex.measureState(KindPipeline, e.PipelineIdx+1)
}

// LiveStateBytes returns the resident size of live operator state.
func (e *BreakerEvent) LiveStateBytes() int64 { return e.ex.liveStateBytes() }

// ProcessImageBytes returns the modeled CRIU image size at this moment.
func (e *BreakerEvent) ProcessImageBytes() int64 {
	return e.ex.acct.ImageBytes(e.ex.liveStateBytes())
}

// AutoSuspend configures a progress-triggered suspension: once the
// accountant's processed-bytes counter crosses the threshold, workers raise
// the suspension request themselves at the next morsel boundary. This gives
// deterministic "suspend at ~X% of execution" semantics independent of
// wall-clock timer granularity.
type AutoSuspend struct {
	Kind             SuspendKind
	AtProcessedBytes int64
}

// Options configure an Executor.
type Options struct {
	// Workers is the number of worker goroutines per pipeline (>=1).
	Workers int
	// Accountant models process-image growth; nil gets a default.
	Accountant *Accountant
	// OnBreaker, when set, is invoked synchronously after every pipeline
	// finalize. Returning ActionSuspend triggers a pipeline-level
	// suspension at this breaker.
	OnBreaker func(*BreakerEvent) BreakerAction
	// AutoSuspend, when its threshold is positive, arms a one-shot
	// progress-triggered suspension.
	AutoSuspend AutoSuspend
	// Obs attaches metrics and tracing. The zero value disables both; the
	// hot morsel loop then pays only two thread-local integer adds.
	Obs obs.Context
}

// execMetrics holds the executor's metric handles, resolved once at
// construction so the run loop never touches the registry. All handles are
// nil (and drop recordings) when no registry is attached.
type execMetrics struct {
	morsels   *obs.Counter
	processed *obs.Counter
	pipesDone *obs.Counter
	breakers  *obs.Counter
	suspends  [3]*obs.Counter // indexed by SuspendKind
	pipeDur   *obs.Histogram
	liveState *obs.Gauge
}

func resolveExecMetrics(r *obs.Registry) execMetrics {
	if r == nil {
		return execMetrics{}
	}
	return execMetrics{
		morsels:   r.Counter(obs.MetricMorsels),
		processed: r.Counter(obs.MetricProcessedBytes),
		pipesDone: r.Counter(obs.MetricPipelinesDone),
		breakers:  r.Counter(obs.MetricBreakers),
		suspends: [3]*obs.Counter{
			KindPipeline: r.Counter(obs.Kinded(obs.MetricSuspends, "pipeline")),
			KindProcess:  r.Counter(obs.Kinded(obs.MetricSuspends, "process")),
		},
		pipeDur:   r.DurationHistogram(obs.MetricPipelineDuration),
		liveState: r.Gauge(obs.MetricLiveStateBytes),
	}
}

// Executor runs a physical plan with morsel-driven parallelism and supports
// the three suspension paths: context cancellation (redo), pipeline-level
// suspension at breakers, and process-level suspension at morsel boundaries.
type Executor struct {
	pp   *PhysicalPlan
	opts Options
	acct *Accountant
	met  execMetrics
	tr   *obs.Trace

	suspendReq  atomic.Int32
	autoFired   atomic.Bool
	autoFiredAt atomic.Int64 // UnixNano of the auto-suspend trigger

	mu          sync.Mutex
	done        []bool
	pipeTimes   []time.Duration
	current     int   // pipeline being executed
	cursor      int64 // restored morsel cursor for current pipeline
	locals      []LocalState
	elapsed     time.Duration // accumulated across resumes
	pipeElapsed time.Duration // accumulated time within the current pipeline
	suspended   *SuspendInfo
	ranAlready  bool
}

// SuspendInfo describes the captured suspension.
type SuspendInfo struct {
	Kind SuspendKind
	// Pipeline is the next pipeline to run (pipeline-level) or the pipeline
	// interrupted mid-flight (process-level).
	Pipeline int
	// Cursor is the morsel cursor of the interrupted pipeline.
	Cursor int64
	// Elapsed is the total execution time consumed so far.
	Elapsed time.Duration
}

// NewExecutor builds an executor for a compiled plan.
func NewExecutor(pp *PhysicalPlan, opts Options) *Executor {
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	acct := opts.Accountant
	if acct == nil {
		acct = NewAccountant()
	}
	return &Executor{
		pp:        pp,
		opts:      opts,
		acct:      acct,
		met:       resolveExecMetrics(opts.Obs.Metrics),
		tr:        opts.Obs.Trace,
		done:      make([]bool, len(pp.Pipelines)),
		pipeTimes: make([]time.Duration, len(pp.Pipelines)),
	}
}

// Plan returns the physical plan.
func (ex *Executor) Plan() *PhysicalPlan { return ex.pp }

// Workers returns the configured worker count.
func (ex *Executor) Workers() int { return ex.opts.Workers }

// Accountant returns the memory accountant.
func (ex *Executor) Accountant() *Accountant { return ex.acct }

// Obs returns the executor's observability context (zero when disabled).
func (ex *Executor) Obs() obs.Context { return obs.Context{Metrics: ex.opts.Obs.Metrics, Trace: ex.tr} }

// RequestSuspend asks the executor to suspend at the next opportunity of the
// given kind. Safe to call from any goroutine. A later request overrides an
// earlier one only if none has been consumed yet.
func (ex *Executor) RequestSuspend(kind SuspendKind) {
	ex.suspendReq.Store(int32(kind))
	ex.tr.Event(obs.EvSuspendRequested, obs.A("kind", kindName(kind)))
}

// kindName renders a SuspendKind for trace attributes.
func kindName(k SuspendKind) string {
	switch k {
	case KindPipeline:
		return "pipeline"
	case KindProcess:
		return "process"
	default:
		return "none"
	}
}

// Suspended returns the suspension capture after Run returned ErrSuspended.
func (ex *Executor) Suspended() *SuspendInfo {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	return ex.suspended
}

// AutoSuspendFiredAt returns when the progress-triggered suspension request
// fired, or the zero time if it has not.
func (ex *Executor) AutoSuspendFiredAt() time.Time {
	n := ex.autoFiredAt.Load()
	if n == 0 {
		return time.Time{}
	}
	return time.Unix(0, n)
}

// ClearSuspension discards a process-level suspension capture and lets Run
// continue the query in place (locals and morsel cursor are retained). It
// turns a suspension barrier into a quiesce point: Riveter uses it to run
// the cost model against a consistent executor state and then keep going
// when the chosen strategy is not an immediate process-level suspension.
func (ex *Executor) ClearSuspension() {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	ex.suspended = nil
	ex.suspendReq.Store(int32(KindNone))
}

// Progress describes how far execution has advanced; used by the cost model
// to estimate the time to the next pipeline breaker.
type Progress struct {
	// Pipeline is the pipeline currently executing (or next to execute).
	Pipeline int
	// NumPipelines is the plan's pipeline count.
	NumPipelines int
	// DoneMorsels and TotalMorsels cover the current pipeline.
	DoneMorsels, TotalMorsels int64
	// PipelineElapsed is the time spent in the current pipeline so far.
	PipelineElapsed time.Duration
}

// NextBreakerEta estimates the remaining time of the current pipeline by
// extrapolating its observed per-morsel rate.
func (p Progress) NextBreakerEta() time.Duration {
	if p.DoneMorsels <= 0 || p.TotalMorsels <= p.DoneMorsels {
		return 0
	}
	perMorsel := float64(p.PipelineElapsed) / float64(p.DoneMorsels)
	return time.Duration(perMorsel * float64(p.TotalMorsels-p.DoneMorsels))
}

// CurrentProgress returns the execution progress snapshot. Meaningful when
// the executor is quiesced (suspended) or between pipelines.
func (ex *Executor) CurrentProgress() Progress {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	p := Progress{Pipeline: ex.current, NumPipelines: len(ex.pp.Pipelines)}
	if ex.current < len(ex.pp.Pipelines) {
		pl := ex.pp.Pipelines[ex.current]
		deps := true
		for _, d := range pl.Deps {
			if !ex.done[d] {
				deps = false
				break
			}
		}
		if deps {
			p.TotalMorsels = pl.Source.MorselCount()
		}
		p.DoneMorsels = ex.cursor
		if p.DoneMorsels > p.TotalMorsels {
			p.DoneMorsels = p.TotalMorsels
		}
		p.PipelineElapsed = ex.pipeElapsed
	}
	return p
}

// EstimateNextBreakerCheckpointBytes approximates the pipeline-level
// checkpoint size at the current pipeline's completion: the finalized live
// states the next pipelines still need, plus the in-flight pipeline's
// worker-local state (which its breaker will merge into the global state).
// Local states are priced by serializing them to a counting writer — the
// checkpoint's L_s depends on serialized bytes, which for hash tables are
// far below their resident size. Call only while the executor is quiesced.
func (ex *Executor) EstimateNextBreakerCheckpointBytes() int64 {
	ex.mu.Lock()
	current := ex.current
	locals := ex.locals
	ex.mu.Unlock()
	n := ex.measureState(KindPipeline, current+1)
	if locals != nil && current < len(ex.pp.Pipelines) {
		sink := ex.pp.Pipelines[current].Sink
		var cw countingWriter
		enc := vector.NewEncoder(&cw)
		for _, ls := range locals {
			_ = sink.SaveLocal(ls, enc)
		}
		n += cw.n
	}
	return n
}

// Elapsed returns total execution time accumulated so far (across resumes).
func (ex *Executor) Elapsed() time.Duration {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	return ex.elapsed
}

// PipelineTimes returns a copy of the per-pipeline durations recorded so far.
func (ex *Executor) PipelineTimes() []time.Duration {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	out := make([]time.Duration, 0, len(ex.pipeTimes))
	for i, d := range ex.pipeTimes {
		if ex.done[i] {
			out = append(out, d)
		}
	}
	return out
}

// DonePipelines returns how many pipelines have finalized.
func (ex *Executor) DonePipelines() int {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	n := 0
	for _, d := range ex.done {
		if d {
			n++
		}
	}
	return n
}

// Run executes the plan to completion, a suspension, or cancellation.
// It may be called again after LoadState to continue a resumed query.
func (ex *Executor) Run(ctx context.Context) (*ResultSet, error) {
	ex.mu.Lock()
	if ex.suspended != nil {
		ex.mu.Unlock()
		return nil, fmt.Errorf("engine: executor already suspended; build a new executor and LoadState to resume")
	}
	start := time.Now()
	startPipe := ex.current
	restoredCursor := ex.cursor
	restoredLocals := ex.locals
	ex.ranAlready = true
	ex.mu.Unlock()

	defer func() {
		ex.mu.Lock()
		ex.elapsed += time.Since(start)
		ex.mu.Unlock()
	}()

	for pi := startPipe; pi < len(ex.pp.Pipelines); pi++ {
		if ex.done[pi] {
			continue
		}
		p := ex.pp.Pipelines[pi]
		for _, dep := range p.Deps {
			if !ex.done[dep] {
				return nil, fmt.Errorf("engine: pipeline %d scheduled before dep %d", pi, dep)
			}
		}
		pipeStart := time.Now()

		var cursor atomic.Int64
		locals := make([]LocalState, ex.opts.Workers)
		if pi == startPipe && restoredLocals != nil {
			if len(restoredLocals) != ex.opts.Workers {
				return nil, fmt.Errorf("engine: resume requires %d workers, have %d", len(restoredLocals), ex.opts.Workers)
			}
			copy(locals, restoredLocals)
			cursor.Store(restoredCursor)
		} else {
			for w := range locals {
				locals[w] = p.Sink.MakeLocal()
			}
		}

		morsels := p.Source.MorselCount()
		if ex.tr != nil {
			ex.tr.Event(obs.EvPipelineStart,
				obs.A("pipeline", pi), obs.A("workers", ex.opts.Workers),
				obs.A("morsels", morsels), obs.A("cursor", cursor.Load()))
		}
		var (
			wg        sync.WaitGroup
			procStop  atomic.Bool
			workerErr atomic.Value
		)
		for w := 0; w < ex.opts.Workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				if err := ex.runWorker(ctx, p, &cursor, morsels, locals[w], &procStop); err != nil {
					workerErr.CompareAndSwap(nil, err)
				}
			}(w)
		}
		wg.Wait()

		if err, _ := workerErr.Load().(error); err != nil {
			return nil, err
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if procStop.Load() {
			// Process-level suspension: capture mid-pipeline state.
			cur := cursor.Load()
			if cur > morsels {
				cur = morsels
			}
			ex.mu.Lock()
			ex.current = pi
			ex.cursor = cur
			ex.locals = locals
			ex.pipeElapsed += time.Since(pipeStart)
			elapsed := ex.elapsed + time.Since(start)
			ex.suspended = &SuspendInfo{Kind: KindProcess, Pipeline: pi, Cursor: cur, Elapsed: elapsed}
			ex.mu.Unlock()
			ex.met.suspends[KindProcess].Inc()
			if ex.tr != nil {
				ex.tr.Event(obs.EvSuspendAcked,
					obs.A("kind", "process"), obs.A("pipeline", pi),
					obs.A("cursor", cur), obs.A("elapsed", elapsed))
			}
			return nil, ErrSuspended
		}

		// Pipeline complete: combine locals deterministically, finalize.
		for _, ls := range locals {
			if err := p.Sink.Combine(ls); err != nil {
				return nil, err
			}
		}
		if err := p.Sink.Finalize(); err != nil {
			return nil, err
		}
		ex.mu.Lock()
		ex.done[pi] = true
		pipeDur := ex.pipeElapsed + time.Since(pipeStart)
		ex.pipeTimes[pi] = pipeDur
		ex.pipeElapsed = 0
		ex.current = pi + 1
		ex.cursor = 0
		ex.locals = nil
		ex.mu.Unlock()
		ex.met.pipesDone.Inc()
		ex.met.pipeDur.ObserveDuration(pipeDur)
		if ex.met.liveState != nil {
			ex.met.liveState.Set(ex.liveStateBytes())
		}
		if ex.tr != nil {
			ex.tr.Event(obs.EvPipelineFinish,
				obs.A("pipeline", pi), obs.A("duration", pipeDur), obs.A("morsels", morsels))
		}

		if pi == len(ex.pp.Pipelines)-1 {
			break // last pipeline: no breaker decision after the result sink
		}
		// A process-level request that arrived during Combine/Finalize (when
		// no worker loop was polling) is honored here: the pipeline boundary
		// is a valid morsel boundary of the next pipeline (cursor 0, fresh
		// locals), so the quiesce latency is bounded by one finalize rather
		// than left pending until the next pipeline spins up workers.
		if SuspendKind(ex.suspendReq.Load()) == KindProcess {
			next := ex.pp.Pipelines[pi+1]
			fresh := make([]LocalState, ex.opts.Workers)
			for w := range fresh {
				fresh[w] = next.Sink.MakeLocal()
			}
			ex.mu.Lock()
			ex.current = pi + 1
			ex.cursor = 0
			ex.locals = fresh
			elapsed := ex.elapsed + time.Since(start)
			ex.suspended = &SuspendInfo{Kind: KindProcess, Pipeline: pi + 1, Elapsed: elapsed}
			ex.mu.Unlock()
			ex.met.suspends[KindProcess].Inc()
			if ex.tr != nil {
				ex.tr.Event(obs.EvSuspendAcked,
					obs.A("kind", "process"), obs.A("pipeline", pi+1),
					obs.A("cursor", int64(0)), obs.A("elapsed", elapsed))
			}
			return nil, ErrSuspended
		}
		if ex.breakerSuspend(pi, start) {
			ex.mu.Lock()
			elapsed := ex.elapsed + time.Since(start)
			ex.suspended = &SuspendInfo{Kind: KindPipeline, Pipeline: pi + 1, Elapsed: elapsed}
			ex.mu.Unlock()
			ex.met.suspends[KindPipeline].Inc()
			if ex.tr != nil {
				ex.tr.Event(obs.EvSuspendAcked,
					obs.A("kind", "pipeline"), obs.A("pipeline", pi+1), obs.A("elapsed", elapsed))
			}
			return nil, ErrSuspended
		}
	}

	res := &ResultSet{Schema: ex.pp.OutSchema, Buf: ex.pp.Result().Buffer()}
	return res, nil
}

// breakerSuspend runs the breaker hook after pipeline pi finalized and
// reports whether a pipeline-level suspension should trigger.
func (ex *Executor) breakerSuspend(pi int, runStart time.Time) bool {
	ex.met.breakers.Inc()
	if ex.tr != nil {
		ex.tr.Event(obs.EvBreaker, obs.A("pipeline", pi))
	}
	// An explicit pipeline-level request wins.
	if SuspendKind(ex.suspendReq.Load()) == KindPipeline {
		ex.suspendReq.Store(int32(KindNone))
		return true
	}
	if ex.opts.OnBreaker == nil {
		return false
	}
	ex.mu.Lock()
	times := make([]time.Duration, 0, pi+1)
	for i := 0; i <= pi; i++ {
		if ex.done[i] {
			times = append(times, ex.pipeTimes[i])
		}
	}
	elapsed := ex.elapsed + time.Since(runStart)
	ex.mu.Unlock()
	ev := &BreakerEvent{
		ex:            ex,
		PipelineIdx:   pi,
		NumPipelines:  len(ex.pp.Pipelines),
		Elapsed:       elapsed,
		PipelineTimes: times,
	}
	return ex.opts.OnBreaker(ev) == ActionSuspend
}

// runWorker is one morsel-pulling worker loop.
func (ex *Executor) runWorker(ctx context.Context, p *Pipeline, cursor *atomic.Int64, morsels int64, local LocalState, procStop *atomic.Bool) error {
	chunk := vector.NewChunk(p.Source.OutTypes())
	chain := makeChain(p.Ops, func(c *vector.Chunk) error {
		return p.Sink.Consume(local, c)
	})
	auto := ex.opts.AutoSuspend
	// Metrics are accumulated worker-locally and flushed once on exit so the
	// morsel loop pays two plain integer adds, not shared atomics.
	var doneMorsels, doneBytes int64
	defer func() {
		ex.met.morsels.Add(doneMorsels)
		ex.met.processed.Add(doneBytes)
	}()
	for {
		if ctx.Err() != nil {
			return nil // cancellation surfaces via ctx.Err in Run
		}
		if auto.AtProcessedBytes > 0 && !ex.autoFired.Load() &&
			ex.acct.ProcessedBytes() >= auto.AtProcessedBytes {
			if ex.autoFired.CompareAndSwap(false, true) {
				ex.autoFiredAt.Store(time.Now().UnixNano())
				ex.RequestSuspend(auto.Kind)
			}
		}
		if SuspendKind(ex.suspendReq.Load()) == KindProcess {
			procStop.Store(true)
			return nil
		}
		idx := cursor.Add(1) - 1
		if idx >= morsels {
			return nil
		}
		n, err := p.Source.ReadMorsel(idx, chunk)
		if err != nil {
			return err
		}
		if n == 0 {
			continue
		}
		mb := chunk.MemBytes()
		ex.acct.AddProcessed(mb)
		doneMorsels++
		doneBytes += mb
		if err := chain(chunk); err != nil {
			return err
		}
	}
}

// makeChain composes streaming operators into a single push function.
func makeChain(ops []StreamOp, final func(*vector.Chunk) error) func(*vector.Chunk) error {
	h := final
	for i := len(ops) - 1; i >= 0; i-- {
		op, next := ops[i], h
		h = func(c *vector.Chunk) error { return op.Process(c, next) }
	}
	return h
}

// liveStateBytes sums the resident size of all sink global states and
// the current pipeline's captured locals. Callers need not hold mu: sinks
// are only mutated between pipelines on the Run goroutine, and this is
// invoked either from the breaker hook (same goroutine) or after suspension.
func (ex *Executor) liveStateBytes() int64 {
	var b int64
	for i, p := range ex.pp.Pipelines {
		if ex.done[i] {
			b += p.Sink.MemBytes()
		}
	}
	if ex.locals != nil {
		p := ex.pp.Pipelines[ex.current]
		for _, ls := range ex.locals {
			b += p.Sink.LocalMemBytes(ls)
		}
	}
	return b
}
