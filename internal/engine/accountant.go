package engine

import "sync/atomic"

// Accountant models the resident memory of the query execution process for
// the CRIU-style process-level strategy. The paper observes that "memory
// allocation is not timely de-allocated during query execution", so a
// process image grows monotonically with progress even when live operator
// state does not. We reproduce that by tracking the cumulative bytes that
// have flowed through the workers and retaining a configurable fraction of
// them in the modeled image, on top of the live operator state.
type Accountant struct {
	processed atomic.Int64

	// Retention is the fraction of processed bytes assumed to remain
	// resident in the process image (allocator slack, undeallocated
	// intermediates, page-cache copies captured by a CRIU dump).
	Retention float64
	// Baseline is the fixed process overhead (code, heap metadata).
	Baseline int64
}

// DefaultRetention is the default resident fraction of processed bytes.
// Calibrated so that, at the experiment scale factors, process images hold
// the paper's relationships: far larger than pipeline-level states for
// aggregation-shaped suspends (Figs. 6 vs 8) while keeping the suspension
// latency L_s a realistic fraction of the termination windows (§IV-B).
const DefaultRetention = 0.2

// DefaultBaseline is the default fixed process image overhead.
const DefaultBaseline = 1 << 20

// NewAccountant returns an accountant with default parameters.
func NewAccountant() *Accountant {
	return &Accountant{Retention: DefaultRetention, Baseline: DefaultBaseline}
}

// AddProcessed records n bytes flowing through a worker.
func (a *Accountant) AddProcessed(n int64) { a.processed.Add(n) }

// ProcessedBytes returns the cumulative processed bytes.
func (a *Accountant) ProcessedBytes() int64 { return a.processed.Load() }

// SetProcessed restores the counter (checkpoint resume).
func (a *Accountant) SetProcessed(n int64) { a.processed.Store(n) }

// ImageBytes returns the modeled process image size given the current live
// operator state size.
func (a *Accountant) ImageBytes(liveState int64) int64 {
	return a.Baseline + liveState + int64(a.Retention*float64(a.processed.Load()))
}
