package engine

import (
	"fmt"

	"github.com/riveterdb/riveter/internal/catalog"
	"github.com/riveterdb/riveter/internal/expr"
	"github.com/riveterdb/riveter/internal/plan"
	"github.com/riveterdb/riveter/internal/vector"
)

// Pipeline is one executable pipeline: a source, a chain of streaming
// operators, and a sink (the pipeline breaker ending it).
type Pipeline struct {
	ID    int
	Label string

	Source Source
	Ops    []StreamOp
	Sink   Sink

	// Deps are pipeline IDs that must be finalized before this pipeline can
	// run (its source scans their sinks, or its probes address them).
	Deps []int
}

// PhysicalPlan is the compiled, executable form of a logical plan: pipelines
// in a valid execution order (every pipeline appears after its Deps), the
// last one sinking into the result collector.
type PhysicalPlan struct {
	Pipelines   []*Pipeline
	OutSchema   *catalog.Schema
	Fingerprint uint64
	Root        plan.Node

	// Shared lists the plan's materialized breakers by subplan fingerprint.
	// After a successful run their finalized buffers are publishable into a
	// cross-session subplan cache, where a later compile with an equal
	// fingerprint folds onto them (CompileOptions.Subplans). Candidates are
	// collected only when sharing is on (ScanShare or Subplans set) —
	// fingerprinting every subtree would tax plain compiles for a cache
	// nothing reads; publishing remains the caller's decision.
	Shared []SharedSubplan
}

// SharedSubplan is one publish candidate: a materialized breaker addressed
// by the fingerprint of the plan subtree it computes.
type SharedSubplan struct {
	Fingerprint uint64
	Sink        BufferedSink
	Types       []vector.Type
}

// NumPipelines returns the pipeline count.
func (pp *PhysicalPlan) NumPipelines() int { return len(pp.Pipelines) }

// Result returns the final collector sink.
func (pp *PhysicalPlan) Result() *CollectorSink {
	return pp.Pipelines[len(pp.Pipelines)-1].Sink.(*CollectorSink)
}

// ScanSharer rewrites base-table scan sources onto shared morsel streams.
// Share receives the private source a scan would have used and returns the
// source to run instead — typically a rider on a per-(table, column-set)
// hub (see internal/fold). The returned source must preserve ReadMorsel's
// random-access determinism: it is only a different way to read the same
// morsels, so the pipeline shape, the checkpoint format, and the result
// bytes are identical with and without sharing.
type ScanSharer interface {
	Share(table string, proj []int, src Source) Source
}

// SubplanProvider resolves subplan fingerprints to finalized results
// published by earlier executions (the cross-session common-subplan
// cache). A hit replaces the whole subtree's pipelines with a BufferSource
// over the cached rows. Because a hit changes the pipeline shape, lookups
// must only be enabled on compiles whose executions cannot be checkpointed
// (the riveter layer enforces this): checkpoint restores revalidate
// pipeline counts, so a shape that depended on cache state would fail the
// restore and force a rerun.
type SubplanProvider interface {
	Lookup(fp uint64) (*RowBuffer, []vector.Type, bool)
}

// CompileOptions tune physical plan lowering.
type CompileOptions struct {
	// NoFusedKernels disables the generated kernel layer: filters and
	// projections stay on the generic interface-dispatched FilterOp/ProjectOp
	// and aggregation uses the map-based HashAggSink. Results and checkpoint
	// bytes are identical either way; the flag exists for equivalence testing
	// and as an escape hatch.
	NoFusedKernels bool
	// ScanShare, when non-nil, routes base-table scans through shared
	// morsel streams. Shape-neutral: safe on every compile, including
	// checkpoint restores (a restored rider rejoins its hub mid-stream).
	ScanShare ScanSharer
	// Subplans, when non-nil, folds subtrees onto cached results from
	// earlier executions. Shape-changing: only for non-suspendable runs.
	Subplans SubplanProvider
}

type compiler struct {
	cat   *catalog.Catalog
	opts  CompileOptions
	pipes []*Pipeline
	// memo shares materialized breakers across references to the same plan
	// node: a subplan appearing several times (Q15's revenue view, say)
	// executes once, and every consumer scans the one finalized sink. Beyond
	// the saved work, sharing makes repeated references bit-identical — two
	// independent executions of a float aggregation may differ in the last
	// ulp depending on how morsels were partitioned across workers.
	memo map[plan.Node]*memoEntry
	// fpMemo extends the pointer memo across structurally identical
	// subtrees: builders that instantiate a common view twice (distinct
	// nodes, equal plan.Fingerprint) still fold onto one breaker. The
	// fingerprint hashes the rendered subtree — tables, projections,
	// predicates, literals — so equal keys mean equal semantics.
	fpMemo map[uint64]*memoEntry
	// shared accumulates the publish candidates for PhysicalPlan.Shared.
	shared []SharedSubplan
}

// memoEntry records one materialized breaker available for reuse.
type memoEntry struct {
	id    int
	sink  BufferedSink
	types []vector.Type
	label string
}

// Compile lowers a logical plan into pipelines with the default options
// (fused kernels enabled). Pipelines are emitted bottom-up, so the slice
// order is already a valid sequential schedule.
func Compile(root plan.Node, cat *catalog.Catalog) (*PhysicalPlan, error) {
	return CompileWith(root, cat, CompileOptions{})
}

// CompileWith is Compile with explicit options.
func CompileWith(root plan.Node, cat *catalog.Catalog, opts CompileOptions) (*PhysicalPlan, error) {
	c := &compiler{cat: cat, opts: opts, memo: make(map[plan.Node]*memoEntry)}
	if opts.ScanShare != nil || opts.Subplans != nil {
		c.fpMemo = make(map[uint64]*memoEntry)
	}
	final := &Pipeline{Label: "result"}
	types, err := c.compile(root, final)
	if err != nil {
		return nil, err
	}
	final.Sink = NewCollectorSink(types, -1)
	c.register(final)
	for _, p := range c.pipes {
		fusePipelineOps(p)
	}
	return &PhysicalPlan{
		Pipelines:   c.pipes,
		OutSchema:   root.Schema(),
		Fingerprint: plan.Fingerprint(root),
		Root:        root,
		Shared:      c.shared,
	}, nil
}

func (c *compiler) register(p *Pipeline) {
	p.ID = len(c.pipes)
	c.pipes = append(c.pipes, p)
}

// compile lowers node n into pipeline p, setting p's source and appending
// streaming operators. It returns the column types flowing out of the chain.
func (c *compiler) compile(n plan.Node, p *Pipeline) ([]vector.Type, error) {
	switch t := n.(type) {
	case *plan.Scan:
		tbl, err := c.cat.Table(t.Table)
		if err != nil {
			return nil, err
		}
		src := NewTableSource(tbl, t.Projection)
		if c.opts.ScanShare != nil {
			// Predicates stay rider-side (the filter op below survives), so
			// every predicate is trivially fold-compatible: hubs group by
			// (table, column-set) only and stream unfiltered morsels.
			p.Source = c.opts.ScanShare.Share(t.Table, t.Projection, src)
		} else {
			p.Source = src
		}
		p.Label = appendLabel(p.Label, "scan("+t.Table+")")
		types := src.OutTypes()
		if t.Filter != nil {
			p.Ops = append(p.Ops, c.filterOp(t.Filter, types))
		}
		return types, nil

	case *plan.Filter:
		types, err := c.compile(t.Child, p)
		if err != nil {
			return nil, err
		}
		p.Ops = append(p.Ops, c.filterOp(t.Cond, types))
		return types, nil

	case *plan.Project:
		inTypes, err := c.compile(t.Child, p)
		if err != nil {
			return nil, err
		}
		op := c.projectOp(t.Exprs, inTypes)
		p.Ops = append(p.Ops, op)
		return op.OutTypes(), nil

	case *plan.Rename:
		return c.compile(t.Child, p)

	case *plan.Join:
		// Build side: its own pipeline ending in the build sink.
		bp := &Pipeline{}
		rtypes, err := c.compile(t.Right, bp)
		if err != nil {
			return nil, err
		}
		build := NewHashJoinBuildSink(t.RightKeys, rtypes)
		bp.Sink = build
		bp.Label = appendLabel(bp.Label, fmt.Sprintf("build(%s)", t.Type))
		c.register(bp)

		// Probe side continues the current pipeline.
		ltypes, err := c.compile(t.Left, p)
		if err != nil {
			return nil, err
		}
		probe := NewHashJoinProbeOp(t.Type, build, t.LeftKeys, t.Extra, ltypes)
		p.Ops = append(p.Ops, probe)
		p.Deps = append(p.Deps, bp.ID)
		p.Label = appendLabel(p.Label, fmt.Sprintf("probe(%s)", t.Type))
		return probe.OutTypes(), nil

	case *plan.Aggregate:
		fp := c.subplanFP(n)
		if types, ok := c.foldBreaker(n, p, fp); ok {
			return types, nil
		}
		cp := &Pipeline{}
		if _, err := c.compile(t.Child, cp); err != nil {
			return nil, err
		}
		outTypes := t.Schema().Types()
		var sink BufferedSink
		if c.opts.NoFusedKernels {
			sink = NewHashAggSink(t.GroupBy, t.Aggs, outTypes)
		} else {
			sink = NewFlatAggSink(t.GroupBy, t.Aggs, outTypes)
		}
		cp.Sink = sink
		cp.Label = appendLabel(cp.Label, "aggregate")
		c.register(cp)
		return c.scanShared(p, c.remember(n, fp, cp.ID, sink, outTypes, "scan(agg)")), nil

	case *plan.Sort:
		fp := c.subplanFP(n)
		if types, ok := c.foldBreaker(n, p, fp); ok {
			return types, nil
		}
		cp := &Pipeline{}
		inTypes, err := c.compile(t.Child, cp)
		if err != nil {
			return nil, err
		}
		sink := NewSortSink(t.Keys, inTypes)
		cp.Sink = sink
		cp.Label = appendLabel(cp.Label, "sort")
		c.register(cp)
		return c.scanShared(p, c.remember(n, fp, cp.ID, sink, inTypes, "scan(sorted)")), nil

	case *plan.Limit:
		fp := c.subplanFP(n)
		if types, ok := c.foldBreaker(n, p, fp); ok {
			return types, nil
		}
		if srt, ok := t.Child.(*plan.Sort); ok {
			// Fuse ORDER BY + LIMIT into a top-N breaker.
			cp := &Pipeline{}
			inTypes, err := c.compile(srt.Child, cp)
			if err != nil {
				return nil, err
			}
			sink := NewTopNSink(srt.Keys, inTypes, t.N, t.Offset)
			cp.Sink = sink
			cp.Label = appendLabel(cp.Label, fmt.Sprintf("topn(%d)", t.N))
			c.register(cp)
			return c.scanShared(p, c.remember(n, fp, cp.ID, sink, inTypes, "scan(topn)")), nil
		}
		// Standalone limit: materialize the child with a row cap.
		cp := &Pipeline{}
		inTypes, err := c.compile(t.Child, cp)
		if err != nil {
			return nil, err
		}
		sink := NewCollectorSink(inTypes, t.Offset+t.N)
		sink.OffsetRows = t.Offset
		cp.Sink = sink
		cp.Label = appendLabel(cp.Label, fmt.Sprintf("limit(%d)", t.N))
		c.register(cp)
		return c.scanShared(p, c.remember(n, fp, cp.ID, sink, inTypes, "scan(limit)")), nil

	case *plan.UnionAll:
		var sinks []BufferedSink
		var types []vector.Type
		for i, in := range t.Inputs {
			cp := &Pipeline{}
			it, err := c.compile(in, cp)
			if err != nil {
				return nil, err
			}
			if i == 0 {
				types = it
			}
			sink := NewCollectorSink(it, -1)
			cp.Sink = sink
			cp.Label = appendLabel(cp.Label, fmt.Sprintf("union-input(%d)", i))
			c.register(cp)
			sinks = append(sinks, sink)
			p.Deps = append(p.Deps, cp.ID)
		}
		p.Source = NewUnionSource(sinks, types)
		p.Label = appendLabel(p.Label, "scan(union)")
		return types, nil

	default:
		return nil, fmt.Errorf("engine: cannot compile %T", n)
	}
}

// subplanFP fingerprints a breaker-producing subtree for cross-subtree
// and cross-session folding. With sharing off (no ScanShare, no Subplans)
// it returns 0 and the compiler falls back to pointer-identity
// memoization alone — rendering and hashing every subtree would tax plain
// compiles for a cache nothing reads. A genuine fingerprint of 0 (one
// hash value in 2^64) merely forfeits a fold opportunity.
func (c *compiler) subplanFP(n plan.Node) uint64 {
	if c.opts.ScanShare == nil && c.opts.Subplans == nil {
		return 0
	}
	return plan.Fingerprint(n)
}

// foldBreaker resolves a breaker-producing subtree against the intra-plan
// memos (pointer first, then fingerprint) and the cross-session subplan
// cache, wiring pipeline p when it folds. It returns the output types and
// whether the subtree was folded away.
func (c *compiler) foldBreaker(n plan.Node, p *Pipeline, fp uint64) ([]vector.Type, bool) {
	if e := c.memo[n]; e != nil {
		return c.scanShared(p, e), true
	}
	if fp == 0 {
		return nil, false
	}
	if e := c.fpMemo[fp]; e != nil {
		return c.scanShared(p, e), true
	}
	if c.opts.Subplans != nil {
		if buf, types, ok := c.opts.Subplans.Lookup(fp); ok {
			p.Source = NewBufferSource(buf, types)
			p.Label = appendLabel(p.Label, "scan(folded)")
			return types, true
		}
	}
	return nil, false
}

// remember memoizes a freshly registered breaker for reuse and records it
// as a publish candidate.
func (c *compiler) remember(n plan.Node, fp uint64, id int, sink BufferedSink, types []vector.Type, label string) *memoEntry {
	e := &memoEntry{id: id, sink: sink, types: types, label: label}
	c.memo[n] = e
	if fp != 0 {
		c.fpMemo[fp] = e
		c.shared = append(c.shared, SharedSubplan{Fingerprint: fp, Sink: sink, Types: types})
	}
	return e
}

// scanShared points pipeline p at a materialized breaker's finalized buffer.
func (c *compiler) scanShared(p *Pipeline, e *memoEntry) []vector.Type {
	p.Source = NewSinkSource(e.sink, e.types)
	p.Deps = append(p.Deps, e.id)
	p.Label = appendLabel(p.Label, e.label)
	return e.types
}

// filterOp lowers a predicate to a fused kernel operator when the expression
// compiles to a columnar program, else to the generic FilterOp.
func (c *compiler) filterOp(cond expr.Expr, types []vector.Type) StreamOp {
	if !c.opts.NoFusedKernels {
		if prog := expr.CompileProgram(cond); prog != nil && prog.OutType() == vector.TypeBool {
			return NewFusedOp(prog, nil, types)
		}
	}
	return NewFilterOp(cond, types)
}

// projectOp lowers a projection to a fused kernel operator when every
// expression compiles, else to the generic ProjectOp. Mixing would buy
// nothing: one generic expression forces the per-row result copy anyway.
func (c *compiler) projectOp(exprs []expr.Expr, inTypes []vector.Type) StreamOp {
	if !c.opts.NoFusedKernels {
		progs := make([]*expr.Program, len(exprs))
		ok := true
		for i, e := range exprs {
			if progs[i] = expr.CompileProgram(e); progs[i] == nil {
				ok = false
				break
			}
		}
		if ok {
			return NewFusedOp(nil, progs, inTypes)
		}
	}
	return NewProjectOp(exprs)
}

// fusePipelineOps merges a filter-only FusedOp immediately followed by a
// project-only FusedOp into one scan+filter+project stage, so survivors are
// gathered once and projected in place instead of crossing an operator
// boundary per morsel.
func fusePipelineOps(p *Pipeline) {
	out := p.Ops[:0]
	for _, op := range p.Ops {
		if f, ok := op.(*FusedOp); ok && f.pred == nil && len(out) > 0 {
			if prev, ok2 := out[len(out)-1].(*FusedOp); ok2 && prev.projs == nil {
				out[len(out)-1] = NewFusedOp(prev.pred, f.projs, prev.inTypes)
				continue
			}
		}
		out = append(out, op)
	}
	p.Ops = out
}

func appendLabel(cur, add string) string {
	if cur == "" {
		return add
	}
	return cur + "->" + add
}
