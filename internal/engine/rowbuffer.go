// Package engine implements Riveter's push-based, morsel-driven pipeline
// execution engine — the DuckDB-style substrate the paper's pipeline-level
// suspension strategy is built on.
//
// A physical plan is a DAG of pipelines split at pipeline breakers (hash-join
// build, hash aggregate, sort/top-N, materialization). Each pipeline runs as
// N workers pulling row-range morsels from its source through a chain of
// streaming operators into a sink; every worker owns a local sink state, and
// at pipeline completion the local states are combined into the sink's global
// state and finalized. The engine exposes exactly the two suspension hooks
// the paper needs: after every pipeline finalize (pipeline-level) and at
// every morsel boundary (process-level).
package engine

import (
	"github.com/riveterdb/riveter/internal/vector"
)

// RowBuffer is a chunked, append-only row store used by sink states: hash
// join build sides, sort inputs, and materialized results.
type RowBuffer struct {
	types  []vector.Type
	chunks []*vector.Chunk
	rows   int64
}

// NewRowBuffer returns an empty buffer for rows of the given column types.
func NewRowBuffer(types []vector.Type) *RowBuffer {
	return &RowBuffer{types: types}
}

// Types returns the column types.
func (b *RowBuffer) Types() []vector.Type { return b.types }

// Rows returns the number of buffered rows.
func (b *RowBuffer) Rows() int64 { return b.rows }

// NumChunks returns the number of chunks.
func (b *RowBuffer) NumChunks() int { return len(b.chunks) }

// Chunk returns chunk i.
func (b *RowBuffer) Chunk(i int) *vector.Chunk { return b.chunks[i] }

func (b *RowBuffer) tail() *vector.Chunk {
	if len(b.chunks) == 0 || b.chunks[len(b.chunks)-1].Full() {
		b.chunks = append(b.chunks, vector.NewChunk(b.types))
	}
	return b.chunks[len(b.chunks)-1]
}

// AppendChunk appends all rows of c.
func (b *RowBuffer) AppendChunk(c *vector.Chunk) {
	b.appendVectors(c.Cols(), c.Len())
}

// appendVectors bulk-appends rows [0,n) of the given column vectors,
// packing chunks densely to ChunkCapacity so Locate/Row keep their
// fixed-stride addressing (and checkpoint chunk boundaries stay put).
func (b *RowBuffer) appendVectors(cols []*vector.Vector, n int) {
	start := 0
	for start < n {
		t := b.tail()
		m := n - start
		if room := vector.ChunkCapacity - t.Len(); m > room {
			m = room
		}
		for j, v := range cols {
			t.Col(j).AppendRange(v, start, start+m)
		}
		t.SetLen(t.Len() + m)
		start += m
	}
	b.rows += int64(n)
}

// AppendRowFrom appends row i of c.
func (b *RowBuffer) AppendRowFrom(c *vector.Chunk, i int) {
	b.tail().AppendRowFrom(c, i)
	b.rows++
}

// AppendRowValues appends one boxed row.
func (b *RowBuffer) AppendRowValues(vals ...vector.Value) {
	b.tail().AppendRowValues(vals...)
	b.rows++
}

// Row returns the boxed values of global row index r.
func (b *RowBuffer) Row(r int64) []vector.Value {
	ci, ri := int(r/vector.ChunkCapacity), int(r%vector.ChunkCapacity)
	return b.chunks[ci].Row(ri)
}

// Locate maps a global row index to (chunk, row-in-chunk).
func (b *RowBuffer) Locate(r int64) (ci, ri int) {
	return int(r / vector.ChunkCapacity), int(r % vector.ChunkCapacity)
}

// Value returns the boxed value at (row, col).
func (b *RowBuffer) Value(r int64, col int) vector.Value {
	ci, ri := b.Locate(r)
	return b.chunks[ci].Col(col).Value(ri)
}

// Concat appends all rows of other (which must share types).
func (b *RowBuffer) Concat(other *RowBuffer) {
	for _, c := range other.chunks {
		b.AppendChunk(c)
	}
}

// MemBytes estimates the resident size of the buffer.
func (b *RowBuffer) MemBytes() int64 {
	var n int64
	for _, c := range b.chunks {
		n += c.MemBytes()
	}
	return n
}

// Save serializes the buffer.
func (b *RowBuffer) Save(enc *vector.Encoder) {
	enc.Uvarint(uint64(len(b.types)))
	for _, t := range b.types {
		enc.Uvarint(uint64(t))
	}
	enc.Uvarint(uint64(len(b.chunks)))
	for _, c := range b.chunks {
		enc.Chunk(c)
	}
}

// LoadRowBuffer deserializes a buffer written by Save.
func LoadRowBuffer(dec *vector.Decoder) (*RowBuffer, error) {
	nt := int(dec.Uvarint())
	if err := dec.Err(); err != nil {
		return nil, err
	}
	types := make([]vector.Type, nt)
	for i := range types {
		types[i] = vector.Type(dec.Uvarint())
	}
	nc := int(dec.Uvarint())
	if err := dec.Err(); err != nil {
		return nil, err
	}
	b := NewRowBuffer(types)
	for i := 0; i < nc; i++ {
		c := dec.Chunk()
		if err := dec.Err(); err != nil {
			return nil, err
		}
		b.chunks = append(b.chunks, c)
		b.rows += int64(c.Len())
	}
	return b, dec.Err()
}
