package engine

import (
	"fmt"
	"sort"
	"strings"

	"github.com/riveterdb/riveter/internal/catalog"
	"github.com/riveterdb/riveter/internal/vector"
)

// ResultSet is a fully materialized query result.
type ResultSet struct {
	Schema *catalog.Schema
	Buf    *RowBuffer
}

// NumRows returns the row count.
func (r *ResultSet) NumRows() int64 { return r.Buf.Rows() }

// Row returns the boxed values of row i.
func (r *ResultSet) Row(i int64) []vector.Value { return r.Buf.Row(i) }

// Rows materializes all rows as boxed values.
func (r *ResultSet) Rows() [][]vector.Value {
	out := make([][]vector.Value, r.NumRows())
	for i := int64(0); i < r.NumRows(); i++ {
		out[i] = r.Row(i)
	}
	return out
}

// SortedKey returns a canonical multiset key of the result, independent of
// row order; used to compare results across worker counts and resumes.
func (r *ResultSet) SortedKey() string {
	rows := make([]string, r.NumRows())
	for i := int64(0); i < r.NumRows(); i++ {
		vals := r.Row(i)
		parts := make([]string, len(vals))
		for j, v := range vals {
			if v.Type == vector.TypeFloat64 && !v.Null {
				// Six significant digits: tolerant of float summation-order
				// differences across worker counts and resumes.
				parts[j] = fmt.Sprintf("%.6g", v.F)
			} else {
				parts[j] = v.String()
			}
		}
		rows[i] = strings.Join(parts, "|")
	}
	sort.Strings(rows)
	return strings.Join(rows, "\n")
}

// String renders the result as an aligned table (up to maxRows rows).
func (r *ResultSet) String() string {
	return r.Format(50)
}

// Format renders up to maxRows rows as an aligned text table.
func (r *ResultSet) Format(maxRows int64) string {
	var b strings.Builder
	names := r.Schema.Names()
	widths := make([]int, len(names))
	for i, n := range names {
		widths[i] = len(n)
	}
	n := r.NumRows()
	if n > maxRows {
		n = maxRows
	}
	cells := make([][]string, n)
	for i := int64(0); i < n; i++ {
		row := r.Row(i)
		cells[i] = make([]string, len(row))
		for j, v := range row {
			s := v.String()
			if v.Type == vector.TypeFloat64 && !v.Null {
				s = fmt.Sprintf("%.2f", v.F)
			}
			cells[i][j] = s
			if len(s) > widths[j] {
				widths[j] = len(s)
			}
		}
	}
	for j, name := range names {
		fmt.Fprintf(&b, "%-*s  ", widths[j], name)
	}
	b.WriteString("\n")
	for i := range cells {
		for j := range cells[i] {
			fmt.Fprintf(&b, "%-*s  ", widths[j], cells[i][j])
		}
		b.WriteString("\n")
	}
	if r.NumRows() > maxRows {
		fmt.Fprintf(&b, "... (%d rows total)\n", r.NumRows())
	}
	return b.String()
}
