package engine

import (
	"fmt"
	"math"

	"github.com/riveterdb/riveter/internal/expr"
	"github.com/riveterdb/riveter/internal/plan"
	"github.com/riveterdb/riveter/internal/vector"
)

// aggState is the running state of one aggregate function for one group.
type aggState struct {
	sumF     float64
	sumI     int64
	count    int64
	minmax   vector.Value
	distinct map[vector.Value]struct{} // only for DISTINCT aggregates
}

// distinctMapSizeHint pre-sizes per-group DISTINCT sets so the first few
// inserts don't each trigger an incremental map growth allocation.
const distinctMapSizeHint = 8

func newAggState(spec plan.AggSpec) *aggState {
	st := &aggState{}
	if spec.Distinct {
		st.distinct = make(map[vector.Value]struct{}, distinctMapSizeHint)
	}
	return st
}

// update folds value v (non-NULL unless countStar) into the state.
func (st *aggState) update(spec plan.AggSpec, v vector.Value) {
	if spec.Func == plan.AggCountStar {
		st.count++
		return
	}
	if v.Null {
		return // SQL aggregates ignore NULLs
	}
	if spec.Distinct {
		if _, seen := st.distinct[v]; seen {
			return
		}
		st.distinct[v] = struct{}{}
	}
	switch spec.Func {
	case plan.AggSum, plan.AggAvg:
		st.count++
		if v.Type == vector.TypeFloat64 {
			st.sumF += v.F
		} else {
			st.sumI += v.I
			st.sumF += float64(v.I)
		}
	case plan.AggCount:
		st.count++
	case plan.AggMin:
		if st.minmax.Type == vector.TypeInvalid || v.Compare(st.minmax) < 0 {
			st.minmax = v
		}
	case plan.AggMax:
		if st.minmax.Type == vector.TypeInvalid || v.Compare(st.minmax) > 0 {
			st.minmax = v
		}
	}
}

// merge folds another state for the same (spec, group) into st.
func (st *aggState) merge(spec plan.AggSpec, o *aggState) {
	if spec.Distinct {
		for v := range o.distinct {
			if _, seen := st.distinct[v]; !seen {
				st.distinct[v] = struct{}{}
				st.count++ // recounted below for count-distinct finalize
			}
		}
		return
	}
	switch spec.Func {
	case plan.AggSum, plan.AggAvg:
		st.count += o.count
		st.sumF += o.sumF
		st.sumI += o.sumI
	case plan.AggCount, plan.AggCountStar:
		st.count += o.count
	case plan.AggMin:
		if o.minmax.Type != vector.TypeInvalid && (st.minmax.Type == vector.TypeInvalid || o.minmax.Compare(st.minmax) < 0) {
			st.minmax = o.minmax
		}
	case plan.AggMax:
		if o.minmax.Type != vector.TypeInvalid && (st.minmax.Type == vector.TypeInvalid || o.minmax.Compare(st.minmax) > 0) {
			st.minmax = o.minmax
		}
	}
}

// result produces the final value of the aggregate.
func (st *aggState) result(spec plan.AggSpec) vector.Value {
	if spec.Distinct {
		return vector.NewInt64(int64(len(st.distinct)))
	}
	switch spec.Func {
	case plan.AggCount, plan.AggCountStar:
		return vector.NewInt64(st.count)
	case plan.AggAvg:
		if st.count == 0 {
			return vector.NewNull(vector.TypeFloat64)
		}
		return vector.NewFloat64(st.sumF / float64(st.count))
	case plan.AggSum:
		if st.count == 0 {
			return vector.NewNull(spec.ResultType())
		}
		if spec.ResultType() == vector.TypeFloat64 {
			return vector.NewFloat64(st.sumF)
		}
		return vector.NewInt64(st.sumI)
	default: // min/max
		if st.minmax.Type == vector.TypeInvalid {
			return vector.NewNull(spec.ResultType())
		}
		return st.minmax
	}
}

// save serializes the state.
func (st *aggState) save(enc *vector.Encoder) {
	enc.Float64(st.sumF)
	enc.Varint(st.sumI)
	enc.Varint(st.count)
	enc.Value(st.minmax)
	if st.distinct != nil {
		enc.Bool(true)
		enc.Uvarint(uint64(len(st.distinct)))
		for v := range st.distinct {
			enc.Value(v)
		}
	} else {
		enc.Bool(false)
	}
}

func loadAggState(dec *vector.Decoder) *aggState {
	st := &aggState{}
	st.sumF = dec.Float64()
	st.sumI = dec.Varint()
	st.count = dec.Varint()
	st.minmax = dec.Value()
	if dec.Bool() {
		n := int(dec.Uvarint())
		st.distinct = make(map[vector.Value]struct{}, n)
		for i := 0; i < n; i++ {
			st.distinct[dec.Value()] = struct{}{}
		}
	}
	return st
}

func (st *aggState) memBytes() int64 {
	b := int64(64)
	if st.distinct != nil {
		b += int64(len(st.distinct)) * 64
	}
	return b
}

// groupKey holds the boxed values of a group's key columns, kept for output
// materialization and state serialization. Keys of up to eight columns are
// supported, which covers TPC-H (Q10 groups by seven columns).
type groupKey [8]vector.Value

// encodeKeyFromVecs appends a canonical byte encoding of row r's group-key
// columns to dst. The encoding is injective (length-prefixed strings, type
// tags for null), so byte equality equals value equality.
func encodeKeyFromVecs(dst []byte, groupVecs []*vector.Vector, r int) []byte {
	for _, v := range groupVecs {
		if v.IsNull(r) {
			dst = append(dst, 0)
			continue
		}
		switch v.Type() {
		case vector.TypeInt64, vector.TypeDate:
			dst = append(dst, 1)
			x := uint64(v.Int64s()[r])
			dst = append(dst, byte(x), byte(x>>8), byte(x>>16), byte(x>>24), byte(x>>32), byte(x>>40), byte(x>>48), byte(x>>56))
		case vector.TypeFloat64:
			dst = append(dst, 2)
			x := uint64(floatBitsForKey(v.Float64s()[r]))
			dst = append(dst, byte(x), byte(x>>8), byte(x>>16), byte(x>>24), byte(x>>32), byte(x>>40), byte(x>>48), byte(x>>56))
		case vector.TypeString:
			s := v.Strings()[r]
			dst = append(dst, 3)
			n := uint32(len(s))
			dst = append(dst, byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
			dst = append(dst, s...)
		case vector.TypeBool:
			if v.Bools()[r] {
				dst = append(dst, 4, 1)
			} else {
				dst = append(dst, 4, 0)
			}
		}
	}
	return dst
}

// encodeKeyFromValues is encodeKeyFromVecs over boxed values (Combine path).
func encodeKeyFromValues(dst []byte, key groupKey, n int) []byte {
	for i := 0; i < n; i++ {
		v := key[i]
		if v.Null {
			dst = append(dst, 0)
			continue
		}
		switch v.Type {
		case vector.TypeInt64, vector.TypeDate:
			dst = append(dst, 1)
			x := uint64(v.I)
			dst = append(dst, byte(x), byte(x>>8), byte(x>>16), byte(x>>24), byte(x>>32), byte(x>>40), byte(x>>48), byte(x>>56))
		case vector.TypeFloat64:
			dst = append(dst, 2)
			x := floatBitsForKey(v.F)
			dst = append(dst, byte(x), byte(x>>8), byte(x>>16), byte(x>>24), byte(x>>32), byte(x>>40), byte(x>>48), byte(x>>56))
		case vector.TypeString:
			dst = append(dst, 3)
			n := uint32(len(v.S))
			dst = append(dst, byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
			dst = append(dst, v.S...)
		case vector.TypeBool:
			if v.B {
				dst = append(dst, 4, 1)
			} else {
				dst = append(dst, 4, 0)
			}
		}
	}
	return dst
}

func floatBitsForKey(f float64) uint64 {
	if f == 0 {
		f = 0 // canonicalize -0
	}
	return mathFloat64bits(f)
}

// aggHashTable maps encoded group keys to per-aggregate states.
type aggHashTable struct {
	groups map[string]*aggGroup
	order  []string // first-seen order for deterministic output
}

type aggGroup struct {
	key    groupKey
	states []*aggState
}

func newAggHashTable() *aggHashTable {
	return &aggHashTable{groups: make(map[string]*aggGroup)}
}

// get looks up the encoded key, creating the group on first sight; boxed key
// values are captured lazily via makeKey only when the group is new.
func (h *aggHashTable) get(enc []byte, makeKey func() groupKey, specs []plan.AggSpec) *aggGroup {
	if g, ok := h.groups[string(enc)]; ok {
		return g
	}
	g := &aggGroup{key: makeKey(), states: make([]*aggState, len(specs))}
	for i, sp := range specs {
		g.states[i] = newAggState(sp)
	}
	k := string(enc)
	h.groups[k] = g
	h.order = append(h.order, k)
	return g
}

// HashAggSink is the pipeline breaker for hash aggregation. Worker-local
// hash tables are merged into the global table at Combine; Finalize
// materializes the groups into a row buffer scannable by the next pipeline —
// the exact "global state" of the paper's Fig. 3.
type HashAggSink struct {
	groupBy  []expr.Expr
	specs    []plan.AggSpec
	outTypes []vector.Type

	global *aggHashTable
	buf    *RowBuffer
	final  bool
}

// NewHashAggSink builds the sink. outTypes is groupTypes ++ aggregate
// result types (matching plan.Aggregate's schema).
func NewHashAggSink(groupBy []expr.Expr, specs []plan.AggSpec, outTypes []vector.Type) *HashAggSink {
	if len(groupBy) > len(groupKey{}) {
		panic(fmt.Sprintf("aggregate with %d group columns (max %d)", len(groupBy), len(groupKey{})))
	}
	return &HashAggSink{groupBy: groupBy, specs: specs, outTypes: outTypes, global: newAggHashTable()}
}

type aggLocal struct {
	table     *aggHashTable
	keyBuf    []byte
	rowGroups []*aggGroup
	groupVecs []*vector.Vector // per-chunk eval scratch (worker-local)
	argVecs   []*vector.Vector
}

// MakeLocal implements Sink.
func (s *HashAggSink) MakeLocal() LocalState { return &aggLocal{table: newAggHashTable()} }

// Consume implements Sink. The hot loop avoids boxing: group keys are
// encoded to a reusable byte buffer, and SUM/AVG/COUNT aggregates read the
// raw column slices directly.
func (s *HashAggSink) Consume(ls LocalState, c *vector.Chunk) error {
	l := ls.(*aggLocal)
	n := c.Len()
	if n == 0 {
		return nil
	}
	if cap(l.groupVecs) < len(s.groupBy) {
		l.groupVecs = make([]*vector.Vector, len(s.groupBy))
	}
	groupVecs := l.groupVecs[:len(s.groupBy)]
	for i, g := range s.groupBy {
		v, err := g.Eval(c)
		if err != nil {
			return err
		}
		groupVecs[i] = v
	}
	if cap(l.argVecs) < len(s.specs) {
		l.argVecs = make([]*vector.Vector, len(s.specs))
	}
	argVecs := l.argVecs[:len(s.specs)]
	for i := range argVecs {
		argVecs[i] = nil
	}
	for i, sp := range s.specs {
		if sp.Arg == nil {
			continue
		}
		v, err := sp.Arg.Eval(c)
		if err != nil {
			return err
		}
		argVecs[i] = v
	}

	// Locate (or create) each row's group.
	if cap(l.rowGroups) < n {
		l.rowGroups = make([]*aggGroup, n)
	}
	rowGroups := l.rowGroups[:n]
	keyBuf := l.keyBuf[:0]
	for r := 0; r < n; r++ {
		keyBuf = encodeKeyFromVecs(keyBuf[:0], groupVecs, r)
		rr := r
		rowGroups[r] = l.table.get(keyBuf, func() groupKey {
			var key groupKey
			for i, gv := range groupVecs {
				key[i] = gv.Value(rr)
			}
			return key
		}, s.specs)
	}
	l.keyBuf = keyBuf

	// Fold each aggregate with a type-specialized loop.
	for i, sp := range s.specs {
		av := argVecs[i]
		switch {
		case sp.Func == plan.AggCountStar:
			for r := 0; r < n; r++ {
				rowGroups[r].states[i].count++
			}
		case sp.Distinct || sp.Func == plan.AggMin || sp.Func == plan.AggMax:
			for r := 0; r < n; r++ {
				rowGroups[r].states[i].update(sp, av.Value(r))
			}
		case sp.Func == plan.AggCount:
			for r := 0; r < n; r++ {
				if !av.IsNull(r) {
					rowGroups[r].states[i].count++
				}
			}
		case av.Type() == vector.TypeFloat64: // sum/avg over doubles
			fs := av.Float64s()
			hasNulls := av.HasNulls()
			for r := 0; r < n; r++ {
				if hasNulls && av.IsNull(r) {
					continue
				}
				st := rowGroups[r].states[i]
				st.count++
				st.sumF += fs[r]
			}
		case av.Type() == vector.TypeInt64 || av.Type() == vector.TypeDate:
			xs := av.Int64s()
			hasNulls := av.HasNulls()
			for r := 0; r < n; r++ {
				if hasNulls && av.IsNull(r) {
					continue
				}
				st := rowGroups[r].states[i]
				st.count++
				st.sumI += xs[r]
				st.sumF += float64(xs[r])
			}
		default:
			for r := 0; r < n; r++ {
				rowGroups[r].states[i].update(sp, av.Value(r))
			}
		}
	}
	return nil
}

// Combine implements Sink.
func (s *HashAggSink) Combine(ls LocalState) error {
	l := ls.(*aggLocal)
	var keyBuf []byte
	for _, enc := range l.table.order {
		lg := l.table.groups[enc]
		keyBuf = encodeKeyFromValues(keyBuf[:0], lg.key, len(s.groupBy))
		gg := s.global.get(keyBuf, func() groupKey { return lg.key }, s.specs)
		for i, sp := range s.specs {
			gg.states[i].merge(sp, lg.states[i])
		}
	}
	return nil
}

// Finalize implements Sink.
func (s *HashAggSink) Finalize() error {
	s.buf = NewRowBuffer(s.outTypes)
	if len(s.groupBy) == 0 && len(s.global.order) == 0 {
		// Global aggregation over zero rows still yields one row.
		s.global.get(nil, func() groupKey { return groupKey{} }, s.specs)
	}
	// One reusable row: AppendRowValues copies the values into the buffer's
	// chunk immediately, so materialization costs a single slice allocation
	// rather than one per group.
	row := make([]vector.Value, 0, len(s.outTypes))
	for _, enc := range s.global.order {
		g := s.global.groups[enc]
		row = row[:0]
		for i := range s.groupBy {
			row = append(row, g.key[i])
		}
		for i, sp := range s.specs {
			row = append(row, g.states[i].result(sp))
		}
		s.buf.AppendRowValues(row...)
	}
	s.final = true
	return nil
}

// Buffer implements BufferedSink.
func (s *HashAggSink) Buffer() *RowBuffer { return s.buf }

// NumGroups returns the current number of global groups.
func (s *HashAggSink) NumGroups() int { return len(s.global.order) }

func (s *HashAggSink) saveTable(enc *vector.Encoder, t *aggHashTable) {
	enc.Uvarint(uint64(len(t.order)))
	for _, ek := range t.order {
		g := t.groups[ek]
		for i := 0; i < len(s.groupBy); i++ {
			enc.Value(g.key[i])
		}
		for _, st := range g.states {
			st.save(enc)
		}
	}
}

func (s *HashAggSink) loadTable(dec *vector.Decoder) (*aggHashTable, error) {
	t := newAggHashTable()
	n := int(dec.Uvarint())
	if err := dec.Err(); err != nil {
		return nil, err
	}
	var keyBuf []byte
	for r := 0; r < n; r++ {
		var key groupKey
		for i := 0; i < len(s.groupBy); i++ {
			key[i] = dec.Value()
		}
		g := &aggGroup{key: key, states: make([]*aggState, len(s.specs))}
		for i := range s.specs {
			g.states[i] = loadAggState(dec)
		}
		keyBuf = encodeKeyFromValues(keyBuf[:0], key, len(s.groupBy))
		ek := string(keyBuf)
		t.groups[ek] = g
		t.order = append(t.order, ek)
	}
	return t, dec.Err()
}

// SaveGlobal implements Sink. After finalize the scannable buffer is the
// state; the group table is persisted too so a resumed sink could continue
// combining (process-level resume before finalize reloads locals instead).
func (s *HashAggSink) SaveGlobal(enc *vector.Encoder) error {
	s.buf.Save(enc)
	return enc.Err()
}

// LoadGlobal implements Sink.
func (s *HashAggSink) LoadGlobal(dec *vector.Decoder) error {
	buf, err := LoadRowBuffer(dec)
	if err != nil {
		return err
	}
	s.buf = buf
	s.final = true
	return nil
}

// SaveLocal implements Sink.
func (s *HashAggSink) SaveLocal(ls LocalState, enc *vector.Encoder) error {
	s.saveTable(enc, ls.(*aggLocal).table)
	return enc.Err()
}

// LoadLocal implements Sink.
func (s *HashAggSink) LoadLocal(dec *vector.Decoder) (LocalState, error) {
	t, err := s.loadTable(dec)
	if err != nil {
		return nil, err
	}
	return &aggLocal{table: t}, nil
}

// MemBytes implements Sink.
func (s *HashAggSink) MemBytes() int64 {
	var b int64
	for _, g := range s.global.groups {
		b += 64
		for _, st := range g.states {
			b += st.memBytes()
		}
	}
	if s.buf != nil {
		b += s.buf.MemBytes()
	}
	return b
}

// LocalMemBytes implements Sink.
func (s *HashAggSink) LocalMemBytes(ls LocalState) int64 {
	var b int64
	for _, g := range ls.(*aggLocal).table.groups {
		b += 64
		for _, st := range g.states {
			b += st.memBytes()
		}
	}
	return b
}

// mathFloat64bits avoids importing math in multiple files for one function.
func mathFloat64bits(f float64) uint64 { return math.Float64bits(f) }
