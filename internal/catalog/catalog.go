package catalog

import (
	"fmt"
	"sort"
	"sync"
)

// Catalog maps table names to tables. It is safe for concurrent use; the
// engine reads it from many worker goroutines.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// Create registers a new empty table and returns it. It fails if the name is
// already taken.
func (c *Catalog) Create(name string, schema *Schema) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[name]; ok {
		return nil, fmt.Errorf("catalog: table %q already exists", name)
	}
	t := NewTable(name, schema)
	c.tables[name] = t
	return t, nil
}

// Add registers an existing table (e.g. one loaded from disk).
func (c *Catalog) Add(t *Table) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[t.Name()]; ok {
		return fmt.Errorf("catalog: table %q already exists", t.Name())
	}
	c.tables[t.Name()] = t
	return nil
}

// Table returns the named table.
func (c *Catalog) Table(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("catalog: table %q does not exist", name)
	}
	return t, nil
}

// Drop removes the named table.
func (c *Catalog) Drop(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[name]; !ok {
		return fmt.Errorf("catalog: table %q does not exist", name)
	}
	delete(c.tables, name)
	return nil
}

// Names returns all table names in sorted order.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// MemBytes estimates the resident size of all tables.
func (c *Catalog) MemBytes() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var b int64
	for _, t := range c.tables {
		b += t.MemBytes()
	}
	return b
}
