package catalog

import (
	"fmt"

	"github.com/riveterdb/riveter/internal/vector"
)

// Table is an append-only, column-major, in-memory relation. Each column is
// stored as a single contiguous vector, which makes row-range morsel scans
// trivial and cheap.
type Table struct {
	name   string
	schema *Schema
	cols   []*vector.Vector
	rows   int64

	stats *TableStats // lazily computed; invalidated on append
}

// NewTable creates an empty table with the given schema.
func NewTable(name string, schema *Schema) *Table {
	t := &Table{name: name, schema: schema}
	t.cols = make([]*vector.Vector, schema.Arity())
	for i, c := range schema.Columns {
		t.cols[i] = vector.New(c.Type, 0)
	}
	return t
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *Schema { return t.schema }

// NumRows returns the current row count.
func (t *Table) NumRows() int64 { return t.rows }

// Column returns the full storage vector of column i (read-only use).
func (t *Table) Column(i int) *vector.Vector { return t.cols[i] }

// AppendChunk appends all rows of the chunk, whose column types must match
// the schema.
func (t *Table) AppendChunk(c *vector.Chunk) error {
	if c.NumCols() != t.schema.Arity() {
		return fmt.Errorf("table %s: append %d columns to %d-column schema", t.name, c.NumCols(), t.schema.Arity())
	}
	for j := range t.cols {
		want, got := t.schema.Columns[j].Type, c.Col(j).Type()
		if want != got {
			return fmt.Errorf("table %s column %s: append type %v to %v", t.name, t.schema.Columns[j].Name, got, want)
		}
	}
	for i := 0; i < c.Len(); i++ {
		for j, col := range t.cols {
			col.AppendFrom(c.Col(j), i)
		}
	}
	t.rows += int64(c.Len())
	t.stats = nil
	return nil
}

// AppendRow appends a single row of boxed values (slow path; loaders and
// tests).
func (t *Table) AppendRow(vals ...vector.Value) error {
	if len(vals) != t.schema.Arity() {
		return fmt.Errorf("table %s: append row of %d values to %d-column schema", t.name, len(vals), t.schema.Arity())
	}
	for j, col := range t.cols {
		col.AppendValue(vals[j])
	}
	t.rows++
	t.stats = nil
	return nil
}

// ScanInto copies rows [start, start+count) of the projected columns into
// dst, which must have matching column types. It returns the number of rows
// copied (possibly fewer than count at the end of the table).
func (t *Table) ScanInto(dst *vector.Chunk, start, count int64, proj []int) int {
	if start >= t.rows {
		return 0
	}
	end := start + count
	if end > t.rows {
		end = t.rows
	}
	dst.Reset()
	for k, j := range proj {
		dst.Col(k).AppendRange(t.cols[j], int(start), int(end))
	}
	n := int(end - start)
	dst.SetLen(n)
	return n
}

// MemBytes estimates the resident size of the table.
func (t *Table) MemBytes() int64 {
	var b int64
	for _, c := range t.cols {
		b += c.MemBytes()
	}
	return b
}

// Value returns the boxed value at (row, col); for tests and result checks.
func (t *Table) Value(row int64, col int) vector.Value {
	return t.cols[col].Value(int(row))
}
