// Package catalog defines relational schemas, in-memory columnar tables, and
// the database catalog that maps table names to storage. It is the engine's
// source of base data and of the statistics used by the planner's
// cardinality estimation.
package catalog

import (
	"fmt"

	"github.com/riveterdb/riveter/internal/vector"
)

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Type vector.Type
}

// Schema is an ordered list of columns.
type Schema struct {
	Columns []Column
}

// NewSchema builds a schema from alternating name/type pairs.
func NewSchema(cols ...Column) *Schema {
	return &Schema{Columns: cols}
}

// Col is a convenience constructor for Column.
func Col(name string, t vector.Type) Column { return Column{Name: name, Type: t} }

// Arity returns the number of columns.
func (s *Schema) Arity() int { return len(s.Columns) }

// IndexOf returns the position of the named column, or -1.
func (s *Schema) IndexOf(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Types returns the column types in order.
func (s *Schema) Types() []vector.Type {
	ts := make([]vector.Type, len(s.Columns))
	for i, c := range s.Columns {
		ts[i] = c.Type
	}
	return ts
}

// Names returns the column names in order.
func (s *Schema) Names() []string {
	ns := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		ns[i] = c.Name
	}
	return ns
}

// Project returns a new schema with only the given column positions.
func (s *Schema) Project(idx []int) *Schema {
	out := &Schema{Columns: make([]Column, len(idx))}
	for i, j := range idx {
		out.Columns[i] = s.Columns[j]
	}
	return out
}

// String renders the schema for debugging.
func (s *Schema) String() string {
	out := "("
	for i, c := range s.Columns {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%s %s", c.Name, c.Type)
	}
	return out + ")"
}
