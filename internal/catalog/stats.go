package catalog

import "github.com/riveterdb/riveter/internal/vector"

// ColumnStats summarizes one column for cardinality estimation: approximate
// distinct count, null fraction, and min/max for orderable types.
type ColumnStats struct {
	Distinct  int64
	NullCount int64
	Min, Max  vector.Value
	AvgWidth  float64 // average in-memory width in bytes
}

// TableStats summarizes a table for the planner.
type TableStats struct {
	Rows    int64
	Columns []ColumnStats
}

// statsSampleLimit caps the number of rows examined when computing distinct
// counts; beyond it, the distinct count is linearly extrapolated. This keeps
// stats collection cheap and mirrors the sampling real optimizers do.
const statsSampleLimit = 1 << 16

// Stats returns (computing lazily, caching) the table statistics.
func (t *Table) Stats() *TableStats {
	if t.stats != nil {
		return t.stats
	}
	st := &TableStats{Rows: t.rows, Columns: make([]ColumnStats, len(t.cols))}
	sample := t.rows
	if sample > statsSampleLimit {
		sample = statsSampleLimit
	}
	for j, col := range t.cols {
		cs := ColumnStats{}
		seen := make(map[uint64]struct{}, 1024)
		var widthSum int64
		for i := int64(0); i < sample; i++ {
			v := col.Value(int(i))
			if v.Null {
				cs.NullCount++
				continue
			}
			seen[v.Hash()] = struct{}{}
			if cs.Min.Type == vector.TypeInvalid || v.Compare(cs.Min) < 0 {
				cs.Min = v
			}
			if cs.Max.Type == vector.TypeInvalid || v.Compare(cs.Max) > 0 {
				cs.Max = v
			}
			if col.Type() == vector.TypeString {
				widthSum += int64(len(v.S)) + 16
			} else {
				widthSum += int64(col.Type().FixedWidth())
			}
		}
		cs.Distinct = int64(len(seen))
		if sample > 0 && t.rows > sample {
			// Linear extrapolation; deliberately crude (see DESIGN.md: the
			// optimizer-based size estimator is meant to be naive).
			scale := float64(t.rows) / float64(sample)
			cs.Distinct = int64(float64(cs.Distinct) * scale)
			cs.NullCount = int64(float64(cs.NullCount) * scale)
		}
		if cs.Distinct < 1 {
			cs.Distinct = 1
		}
		if sample > 0 {
			cs.AvgWidth = float64(widthSum) / float64(sample)
		}
		st.Columns[j] = cs
	}
	t.stats = st
	return st
}

// RowWidth returns the average row width in bytes according to the stats.
func (s *TableStats) RowWidth() float64 {
	var w float64
	for _, c := range s.Columns {
		w += c.AvgWidth
	}
	return w
}
