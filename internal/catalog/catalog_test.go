package catalog

import (
	"testing"

	"github.com/riveterdb/riveter/internal/vector"
)

func testSchema() *Schema {
	return NewSchema(
		Col("id", vector.TypeInt64),
		Col("name", vector.TypeString),
		Col("score", vector.TypeFloat64),
	)
}

func TestSchemaBasics(t *testing.T) {
	s := testSchema()
	if s.Arity() != 3 {
		t.Fatalf("arity = %d", s.Arity())
	}
	if s.IndexOf("name") != 1 || s.IndexOf("missing") != -1 {
		t.Error("IndexOf wrong")
	}
	ts := s.Types()
	if ts[0] != vector.TypeInt64 || ts[2] != vector.TypeFloat64 {
		t.Error("Types wrong")
	}
	p := s.Project([]int{2, 0})
	if p.Columns[0].Name != "score" || p.Columns[1].Name != "id" {
		t.Error("Project wrong")
	}
	if s.String() == "" {
		t.Error("String empty")
	}
	names := s.Names()
	if len(names) != 3 || names[1] != "name" {
		t.Error("Names wrong")
	}
}

func TestTableAppendAndScan(t *testing.T) {
	tbl := NewTable("t", testSchema())
	for i := 0; i < 100; i++ {
		err := tbl.AppendRow(
			vector.NewInt64(int64(i)),
			vector.NewString("n"),
			vector.NewFloat64(float64(i)*0.5),
		)
		if err != nil {
			t.Fatal(err)
		}
	}
	if tbl.NumRows() != 100 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}

	dst := vector.NewChunk([]vector.Type{vector.TypeFloat64, vector.TypeInt64})
	n := tbl.ScanInto(dst, 90, 50, []int{2, 0})
	if n != 10 || dst.Len() != 10 {
		t.Fatalf("scan returned %d rows", n)
	}
	if dst.Col(1).Int64s()[0] != 90 || dst.Col(0).Float64s()[9] != 99*0.5 {
		t.Error("scan values wrong")
	}
	if got := tbl.ScanInto(dst, 100, 10, []int{0}); got != 0 {
		t.Errorf("scan past end = %d", got)
	}
}

func TestTableAppendChunk(t *testing.T) {
	tbl := NewTable("t", testSchema())
	c := vector.NewChunk(testSchema().Types())
	c.AppendRowValues(vector.NewInt64(1), vector.NewString("a"), vector.NewFloat64(1))
	c.AppendRowValues(vector.NewInt64(2), vector.NewNull(vector.TypeString), vector.NewFloat64(2))
	if err := tbl.AppendChunk(c); err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 2 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	if !tbl.Value(1, 1).Null {
		t.Error("null not preserved")
	}

	bad := vector.NewChunk([]vector.Type{vector.TypeInt64})
	if err := tbl.AppendChunk(bad); err == nil {
		t.Error("arity mismatch must fail")
	}
	bad2 := vector.NewChunk([]vector.Type{vector.TypeString, vector.TypeString, vector.TypeFloat64})
	if err := tbl.AppendChunk(bad2); err == nil {
		t.Error("type mismatch must fail")
	}
	if err := tbl.AppendRow(vector.NewInt64(1)); err == nil {
		t.Error("row arity mismatch must fail")
	}
}

func TestTableStats(t *testing.T) {
	tbl := NewTable("t", testSchema())
	for i := 0; i < 1000; i++ {
		var name vector.Value
		if i%10 == 0 {
			name = vector.NewNull(vector.TypeString)
		} else {
			name = vector.NewString([]string{"a", "b", "c"}[i%3])
		}
		_ = tbl.AppendRow(vector.NewInt64(int64(i%50)), name, vector.NewFloat64(float64(i)))
	}
	st := tbl.Stats()
	if st.Rows != 1000 {
		t.Fatalf("stats rows = %d", st.Rows)
	}
	if st.Columns[0].Distinct != 50 {
		t.Errorf("id distinct = %d, want 50", st.Columns[0].Distinct)
	}
	if st.Columns[1].NullCount != 100 {
		t.Errorf("null count = %d, want 100", st.Columns[1].NullCount)
	}
	if st.Columns[2].Min.F != 0 || st.Columns[2].Max.F != 999 {
		t.Errorf("min/max = %v/%v", st.Columns[2].Min, st.Columns[2].Max)
	}
	if st.RowWidth() <= 0 {
		t.Error("row width must be positive")
	}
	// Stats are cached until append invalidates them.
	if tbl.Stats() != st {
		t.Error("stats should be cached")
	}
	_ = tbl.AppendRow(vector.NewInt64(1), vector.NewString("x"), vector.NewFloat64(0))
	if tbl.Stats() == st {
		t.Error("append must invalidate stats")
	}
}

func TestCatalogCRUD(t *testing.T) {
	c := New()
	_, err := c.Create("orders", testSchema())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Create("orders", testSchema()); err == nil {
		t.Error("duplicate create must fail")
	}
	tbl, err := c.Table("orders")
	if err != nil || tbl.Name() != "orders" {
		t.Fatalf("lookup: %v", err)
	}
	if _, err := c.Table("nope"); err == nil {
		t.Error("missing table lookup must fail")
	}
	other := NewTable("lineitem", testSchema())
	if err := c.Add(other); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(other); err == nil {
		t.Error("duplicate add must fail")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "lineitem" || names[1] != "orders" {
		t.Errorf("names = %v", names)
	}
	if err := c.Drop("orders"); err != nil {
		t.Fatal(err)
	}
	if err := c.Drop("orders"); err == nil {
		t.Error("double drop must fail")
	}
	if c.MemBytes() < 0 {
		t.Error("membytes negative")
	}
}
