package vector

import "math"

// mix64 is a strong 64-bit finalizer (splitmix64 variant) used to hash
// fixed-width values and to combine hashes.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// CombineHash mixes an element hash into an accumulated row hash.
func CombineHash(acc, h uint64) uint64 {
	return mix64(acc ^ (h + 0x9e3779b97f4a7c15 + (acc << 6) + (acc >> 2)))
}

// hashString is an FNV-1a style string hash strengthened by a final mix.
func hashString(s string) uint64 {
	const (
		offset = 0xcbf29ce484222325
		prime  = 0x100000001b3
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return mix64(h)
}

// floatBits canonicalizes -0 to +0 so that equal floats hash equally.
func floatBits(f float64) uint64 {
	if f == 0 {
		f = 0
	}
	return math.Float64bits(f)
}
