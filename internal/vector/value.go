package vector

import (
	"fmt"
	"strconv"
)

// Value is a boxed scalar of any supported type. It is used at planning time
// (constants), in row-oriented code paths (group keys, sort rows), and in
// tests. The zero Value is NULL of invalid type.
type Value struct {
	Type Type
	Null bool
	I    int64
	F    float64
	S    string
	B    bool
}

// NewInt64 returns a BIGINT value.
func NewInt64(v int64) Value { return Value{Type: TypeInt64, I: v} }

// NewFloat64 returns a DOUBLE value.
func NewFloat64(v float64) Value { return Value{Type: TypeFloat64, F: v} }

// NewString returns a VARCHAR value.
func NewString(v string) Value { return Value{Type: TypeString, S: v} }

// NewBool returns a BOOLEAN value.
func NewBool(v bool) Value { return Value{Type: TypeBool, B: v} }

// NewDate returns a DATE value from days since the Unix epoch.
func NewDate(days int64) Value { return Value{Type: TypeDate, I: days} }

// NewNull returns a NULL of the given type.
func NewNull(t Type) Value { return Value{Type: t, Null: true} }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.Null }

// String renders the value for debugging and result printing.
func (v Value) String() string {
	if v.Null {
		return "NULL"
	}
	switch v.Type {
	case TypeBool:
		return strconv.FormatBool(v.B)
	case TypeInt64:
		return strconv.FormatInt(v.I, 10)
	case TypeFloat64:
		return strconv.FormatFloat(v.F, 'f', -1, 64)
	case TypeString:
		return v.S
	case TypeDate:
		return FormatDate(v.I)
	default:
		return fmt.Sprintf("Value(%v)", v.Type)
	}
}

// Compare orders two values of the same type: -1 if v < o, 0 if equal,
// +1 if v > o. NULL sorts before every non-NULL value.
func (v Value) Compare(o Value) int {
	if v.Null || o.Null {
		switch {
		case v.Null && o.Null:
			return 0
		case v.Null:
			return -1
		default:
			return 1
		}
	}
	switch v.Type {
	case TypeBool:
		switch {
		case v.B == o.B:
			return 0
		case !v.B:
			return -1
		default:
			return 1
		}
	case TypeInt64, TypeDate:
		switch {
		case v.I < o.I:
			return -1
		case v.I > o.I:
			return 1
		default:
			return 0
		}
	case TypeFloat64:
		switch {
		case v.F < o.F:
			return -1
		case v.F > o.F:
			return 1
		default:
			return 0
		}
	case TypeString:
		switch {
		case v.S < o.S:
			return -1
		case v.S > o.S:
			return 1
		default:
			return 0
		}
	}
	return 0
}

// Equal reports whether two values are equal. NULLs are equal to each other
// (group-by semantics), not SQL three-valued semantics; expression evaluation
// handles SQL NULL separately.
func (v Value) Equal(o Value) bool { return v.Compare(o) == 0 }

// Hash returns a 64-bit hash of the value, consistent with Equal.
func (v Value) Hash() uint64 {
	if v.Null {
		return 0x9e3779b97f4a7c15
	}
	switch v.Type {
	case TypeBool:
		if v.B {
			return mix64(1)
		}
		return mix64(2)
	case TypeInt64, TypeDate:
		return mix64(uint64(v.I))
	case TypeFloat64:
		return mix64(floatBits(v.F))
	case TypeString:
		return hashString(v.S)
	}
	return 0
}
