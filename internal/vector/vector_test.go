package vector

import (
	"testing"
)

func TestTypeString(t *testing.T) {
	cases := map[Type]string{
		TypeBool:    "BOOLEAN",
		TypeInt64:   "BIGINT",
		TypeFloat64: "DOUBLE",
		TypeString:  "VARCHAR",
		TypeDate:    "DATE",
		TypeInvalid: "INVALID",
	}
	for typ, want := range cases {
		if got := typ.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", typ, got, want)
		}
	}
	if Type(99).String() == "" {
		t.Error("unknown type should still render")
	}
}

func TestTypePredicates(t *testing.T) {
	if !TypeInt64.Numeric() || !TypeFloat64.Numeric() || !TypeDate.Numeric() {
		t.Error("int64/float64/date must be numeric")
	}
	if TypeString.Numeric() || TypeBool.Numeric() {
		t.Error("string/bool must not be numeric")
	}
	if TypeInvalid.Valid() || Type(200).Valid() {
		t.Error("invalid types must not be Valid")
	}
	if w := TypeInt64.FixedWidth(); w != 8 {
		t.Errorf("int64 width = %d, want 8", w)
	}
	if w := TypeString.FixedWidth(); w != 0 {
		t.Errorf("string width = %d, want 0", w)
	}
	if w := TypeBool.FixedWidth(); w != 1 {
		t.Errorf("bool width = %d, want 1", w)
	}
}

func TestVectorAppendAndGet(t *testing.T) {
	v := New(TypeInt64, 4)
	v.AppendInt64(10)
	v.AppendInt64(-3)
	v.AppendNull()
	v.AppendInt64(7)
	if v.Len() != 4 {
		t.Fatalf("Len = %d, want 4", v.Len())
	}
	if v.IsNull(0) || v.IsNull(1) || !v.IsNull(2) || v.IsNull(3) {
		t.Fatal("null bitmap wrong")
	}
	if got := v.Value(1); got.I != -3 || got.Null {
		t.Errorf("Value(1) = %v", got)
	}
	if got := v.Value(2); !got.Null {
		t.Errorf("Value(2) should be NULL, got %v", got)
	}
	if !v.HasNulls() {
		t.Error("HasNulls should be true")
	}
}

func TestVectorAllTypes(t *testing.T) {
	vs := New(TypeString, 2)
	vs.AppendString("hello")
	vs.AppendValue(NewString("world"))
	if vs.Strings()[1] != "world" {
		t.Error("string append failed")
	}

	vb := New(TypeBool, 2)
	vb.AppendBool(true)
	vb.AppendValue(NewBool(false))
	if !vb.Bools()[0] || vb.Bools()[1] {
		t.Error("bool append failed")
	}

	vf := New(TypeFloat64, 2)
	vf.AppendFloat64(1.5)
	vf.AppendValue(NewFloat64(-2.25))
	if vf.Float64s()[1] != -2.25 {
		t.Error("float append failed")
	}

	vd := New(TypeDate, 1)
	vd.AppendValue(NewDate(MustParseDate("1995-06-17")))
	if got := vd.Value(0).String(); got != "1995-06-17" {
		t.Errorf("date value = %q", got)
	}
}

func TestVectorReset(t *testing.T) {
	v := New(TypeInt64, 4)
	v.AppendInt64(1)
	v.AppendNull()
	v.Reset()
	if v.Len() != 0 {
		t.Fatalf("Len after Reset = %d", v.Len())
	}
	v.AppendInt64(5)
	if v.IsNull(0) {
		t.Error("null bitmap must be cleared by Reset")
	}
}

func TestVectorAppendFrom(t *testing.T) {
	src := New(TypeString, 3)
	src.AppendString("a")
	src.AppendNull()
	src.AppendString("c")
	dst := New(TypeString, 3)
	for i := 0; i < 3; i++ {
		dst.AppendFrom(src, i)
	}
	for i := 0; i < 3; i++ {
		if !dst.Value(i).Equal(src.Value(i)) {
			t.Errorf("row %d: %v != %v", i, dst.Value(i), src.Value(i))
		}
	}
}

func TestChunkBasics(t *testing.T) {
	c := NewChunk([]Type{TypeInt64, TypeString})
	c.AppendRowValues(NewInt64(1), NewString("x"))
	c.AppendRowValues(NewInt64(2), NewNull(TypeString))
	if c.Len() != 2 || c.NumCols() != 2 {
		t.Fatalf("len=%d cols=%d", c.Len(), c.NumCols())
	}
	row := c.Row(1)
	if row[0].I != 2 || !row[1].Null {
		t.Errorf("Row(1) = %v", row)
	}
	cl := c.Clone()
	if cl.Len() != 2 || !cl.Row(0)[1].Equal(NewString("x")) {
		t.Error("Clone mismatch")
	}
	c.Reset()
	if c.Len() != 0 {
		t.Error("Reset failed")
	}
	if cl.Len() != 2 {
		t.Error("Clone must be independent of source Reset")
	}
}

func TestChunkSetLenPanicsOnRagged(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SetLen on ragged chunk must panic")
		}
	}()
	c := NewChunk([]Type{TypeInt64, TypeInt64})
	c.Col(0).AppendInt64(1)
	c.SetLen(1)
}

func TestChunkHashGroupsEqualRows(t *testing.T) {
	c := NewChunk([]Type{TypeInt64, TypeString})
	c.AppendRowValues(NewInt64(7), NewString("k"))
	c.AppendRowValues(NewInt64(7), NewString("k"))
	c.AppendRowValues(NewInt64(8), NewString("k"))
	h := c.Hash([]int{0, 1}, nil)
	if h[0] != h[1] {
		t.Error("equal rows must hash equal")
	}
	if h[0] == h[2] {
		t.Error("different rows should hash differently (with overwhelming probability)")
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt64(1), NewInt64(2), -1},
		{NewInt64(2), NewInt64(2), 0},
		{NewInt64(3), NewInt64(2), 1},
		{NewFloat64(1.5), NewFloat64(1.6), -1},
		{NewString("abc"), NewString("abd"), -1},
		{NewBool(false), NewBool(true), -1},
		{NewBool(true), NewBool(true), 0},
		{NewNull(TypeInt64), NewInt64(-100), -1},
		{NewInt64(-100), NewNull(TypeInt64), 1},
		{NewNull(TypeInt64), NewNull(TypeInt64), 0},
		{NewDate(10), NewDate(11), -1},
	}
	for i, tc := range cases {
		if got := tc.a.Compare(tc.b); got != tc.want {
			t.Errorf("case %d: Compare(%v,%v) = %d, want %d", i, tc.a, tc.b, got, tc.want)
		}
	}
}

func TestValueHashConsistentWithEqual(t *testing.T) {
	pairs := [][2]Value{
		{NewInt64(42), NewInt64(42)},
		{NewString("tpch"), NewString("tpch")},
		{NewFloat64(0), NewFloat64(0)}, // hash(+0) == hash(-0) checked below
		{NewBool(true), NewBool(true)},
		{NewNull(TypeString), NewNull(TypeString)},
	}
	for _, p := range pairs {
		if p[0].Hash() != p[1].Hash() {
			t.Errorf("equal values %v hash differently", p[0])
		}
	}
	neg := Value{Type: TypeFloat64, F: negZero()}
	if neg.Hash() != NewFloat64(0).Hash() {
		t.Error("hash(-0) must equal hash(+0)")
	}
}

func negZero() float64 {
	z := 0.0
	return -z
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{NewInt64(-5), "-5"},
		{NewFloat64(2.5), "2.5"},
		{NewString("hi"), "hi"},
		{NewBool(true), "true"},
		{NewNull(TypeInt64), "NULL"},
		{NewDate(0), "1970-01-01"},
	}
	for _, tc := range cases {
		if got := tc.v.String(); got != tc.want {
			t.Errorf("String(%#v) = %q, want %q", tc.v, got, tc.want)
		}
	}
}

func TestMemBytesGrows(t *testing.T) {
	v := New(TypeString, 0)
	before := v.MemBytes()
	for i := 0; i < 100; i++ {
		v.AppendString("some reasonably long string payload")
	}
	if v.MemBytes() <= before {
		t.Error("MemBytes must grow with appended data")
	}
}
