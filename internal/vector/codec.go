package vector

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Encoder writes the compact binary representation shared by the on-disk
// table format and checkpoint files. All integers are varint-encoded; floats
// are fixed 8-byte little-endian.
type Encoder struct {
	w       io.Writer
	buf     [binary.MaxVarintLen64]byte
	written int64
	err     error
}

// NewEncoder returns an Encoder writing to w.
func NewEncoder(w io.Writer) *Encoder { return &Encoder{w: w} }

// Err returns the first write error encountered.
func (e *Encoder) Err() error { return e.err }

// Written returns the number of bytes written so far.
func (e *Encoder) Written() int64 { return e.written }

func (e *Encoder) write(p []byte) {
	if e.err != nil {
		return
	}
	n, err := e.w.Write(p)
	e.written += int64(n)
	e.err = err
}

// Uvarint writes an unsigned varint.
func (e *Encoder) Uvarint(x uint64) {
	n := binary.PutUvarint(e.buf[:], x)
	e.write(e.buf[:n])
}

// Varint writes a signed (zig-zag) varint.
func (e *Encoder) Varint(x int64) {
	n := binary.PutVarint(e.buf[:], x)
	e.write(e.buf[:n])
}

// Float64 writes a fixed-width float64.
func (e *Encoder) Float64(x float64) {
	binary.LittleEndian.PutUint64(e.buf[:8], math.Float64bits(x))
	e.write(e.buf[:8])
}

// Bool writes a single byte 0/1.
func (e *Encoder) Bool(x bool) {
	if x {
		e.write([]byte{1})
	} else {
		e.write([]byte{0})
	}
}

// String writes a length-prefixed string.
func (e *Encoder) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.write([]byte(s))
}

// Bytes writes a length-prefixed byte slice.
func (e *Encoder) Bytes(b []byte) {
	e.Uvarint(uint64(len(b)))
	e.write(b)
}

// Vector writes a full vector: type, length, null bitmap, then data.
func (e *Encoder) Vector(v *Vector) {
	e.Uvarint(uint64(v.typ))
	e.Uvarint(uint64(v.length))
	nullWords := (v.length + 63) / 64
	for i := 0; i < nullWords; i++ {
		var w uint64
		if i < len(v.nulls) {
			w = v.nulls[i]
		}
		e.Uvarint(w)
	}
	switch v.typ {
	case TypeInt64, TypeDate:
		var prev int64
		for _, x := range v.ints[:v.length] {
			e.Varint(x - prev) // delta encoding: keys & dates compress well
			prev = x
		}
	case TypeFloat64:
		for _, x := range v.floats[:v.length] {
			e.Float64(x)
		}
	case TypeString:
		for _, s := range v.strs[:v.length] {
			e.String(s)
		}
	case TypeBool:
		for _, b := range v.bools[:v.length] {
			e.Bool(b)
		}
	}
}

// Chunk writes the column count followed by each column vector.
func (e *Encoder) Chunk(c *Chunk) {
	e.Uvarint(uint64(len(c.cols)))
	for _, col := range c.cols {
		e.Vector(col)
	}
}

// Value writes a boxed value (type, null flag, payload).
func (e *Encoder) Value(v Value) {
	e.Uvarint(uint64(v.Type))
	e.Bool(v.Null)
	if v.Null {
		return
	}
	switch v.Type {
	case TypeInt64, TypeDate:
		e.Varint(v.I)
	case TypeFloat64:
		e.Float64(v.F)
	case TypeString:
		e.String(v.S)
	case TypeBool:
		e.Bool(v.B)
	}
}

// Decoder reads the Encoder's format.
type Decoder struct {
	r   io.ByteReader
	rr  io.Reader
	err error
}

// NewDecoder returns a Decoder reading from r, which must support byte-wise
// reads (e.g. *bufio.Reader, *bytes.Reader).
func NewDecoder(r interface {
	io.Reader
	io.ByteReader
}) *Decoder {
	return &Decoder{r: r, rr: r}
}

// Err returns the first read error encountered.
func (d *Decoder) Err() error { return d.err }

func (d *Decoder) fail(err error) {
	if d.err == nil && err != nil {
		d.err = err
	}
}

// Uvarint reads an unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	x, err := binary.ReadUvarint(d.r)
	d.fail(err)
	return x
}

// Varint reads a signed varint.
func (d *Decoder) Varint() int64 {
	if d.err != nil {
		return 0
	}
	x, err := binary.ReadVarint(d.r)
	d.fail(err)
	return x
}

// Float64 reads a fixed-width float64.
func (d *Decoder) Float64() float64 {
	if d.err != nil {
		return 0
	}
	var b [8]byte
	if _, err := io.ReadFull(d.rr, b[:]); err != nil {
		d.fail(err)
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b[:]))
}

// Bool reads a single-byte bool.
func (d *Decoder) Bool() bool {
	if d.err != nil {
		return false
	}
	b, err := d.r.ReadByte()
	d.fail(err)
	return b != 0
}

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := d.Uvarint()
	if d.err != nil {
		return ""
	}
	if n > 1<<31 {
		d.fail(fmt.Errorf("decode string: implausible length %d", n))
		return ""
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(d.rr, b); err != nil {
		d.fail(err)
		return ""
	}
	return string(b)
}

// Bytes reads a length-prefixed byte slice.
func (d *Decoder) Bytes() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > 1<<33 {
		d.fail(fmt.Errorf("decode bytes: implausible length %d", n))
		return nil
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(d.rr, b); err != nil {
		d.fail(err)
		return nil
	}
	return b
}

// Vector reads a full vector.
func (d *Decoder) Vector() *Vector {
	typ := Type(d.Uvarint())
	n := int(d.Uvarint())
	if d.err != nil {
		return nil
	}
	if !typ.Valid() || n < 0 {
		d.fail(fmt.Errorf("decode vector: bad header type=%v len=%d", typ, n))
		return nil
	}
	v := New(typ, n)
	nullWords := (n + 63) / 64
	nulls := make([]uint64, 0, nullWords)
	any := false
	for i := 0; i < nullWords; i++ {
		w := d.Uvarint()
		nulls = append(nulls, w)
		if w != 0 {
			any = true
		}
	}
	if any {
		v.nulls = nulls
	}
	switch typ {
	case TypeInt64, TypeDate:
		var prev int64
		for i := 0; i < n; i++ {
			prev += d.Varint()
			v.ints = append(v.ints, prev)
		}
	case TypeFloat64:
		for i := 0; i < n; i++ {
			v.floats = append(v.floats, d.Float64())
		}
	case TypeString:
		for i := 0; i < n; i++ {
			v.strs = append(v.strs, d.String())
		}
	case TypeBool:
		for i := 0; i < n; i++ {
			v.bools = append(v.bools, d.Bool())
		}
	}
	v.length = n
	if d.err != nil {
		return nil
	}
	return v
}

// Chunk reads a chunk written by Encoder.Chunk.
func (d *Decoder) Chunk() *Chunk {
	nc := int(d.Uvarint())
	if d.err != nil {
		return nil
	}
	if nc < 0 || nc > 1<<16 {
		d.fail(fmt.Errorf("decode chunk: implausible column count %d", nc))
		return nil
	}
	c := &Chunk{cols: make([]*Vector, nc)}
	n := -1
	for i := 0; i < nc; i++ {
		col := d.Vector()
		if d.err != nil {
			return nil
		}
		if n == -1 {
			n = col.Len()
		} else if col.Len() != n {
			d.fail(fmt.Errorf("decode chunk: ragged columns (%d vs %d)", col.Len(), n))
			return nil
		}
		c.cols[i] = col
	}
	if n < 0 {
		n = 0
	}
	c.length = n
	return c
}

// Value reads a boxed value.
func (d *Decoder) Value() Value {
	typ := Type(d.Uvarint())
	null := d.Bool()
	if d.err != nil {
		return Value{}
	}
	v := Value{Type: typ, Null: null}
	if null {
		return v
	}
	switch typ {
	case TypeInt64, TypeDate:
		v.I = d.Varint()
	case TypeFloat64:
		v.F = d.Float64()
	case TypeString:
		v.S = d.String()
	case TypeBool:
		v.B = d.Bool()
	}
	return v
}
