package vector

import (
	"bytes"
	"fmt"
	"testing"
)

func benchChunk() *Chunk {
	c := NewChunk([]Type{TypeInt64, TypeFloat64, TypeString, TypeDate})
	for i := 0; i < ChunkCapacity; i++ {
		c.AppendRowValues(
			NewInt64(int64(i*37)),
			NewFloat64(float64(i)*0.25),
			NewString(fmt.Sprintf("value-%d", i%64)),
			NewDate(int64(9000+i%1000)),
		)
	}
	return c
}

// BenchmarkEncodeChunk measures the shared binary codec's write throughput.
func BenchmarkEncodeChunk(b *testing.B) {
	c := benchChunk()
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	enc.Chunk(c)
	b.SetBytes(int64(buf.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		enc := NewEncoder(&buf)
		enc.Chunk(c)
		if enc.Err() != nil {
			b.Fatal(enc.Err())
		}
	}
}

// BenchmarkDecodeChunk measures the codec's read throughput.
func BenchmarkDecodeChunk(b *testing.B) {
	c := benchChunk()
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	enc.Chunk(c)
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec := NewDecoder(bytes.NewReader(data))
		if got := dec.Chunk(); got == nil || dec.Err() != nil {
			b.Fatal(dec.Err())
		}
	}
}

// BenchmarkHashChunk measures row hashing over two key columns.
func BenchmarkHashChunk(b *testing.B) {
	c := benchChunk()
	var dst []uint64
	b.SetBytes(int64(c.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = c.Hash([]int{0, 2}, dst)
	}
	_ = dst
}
