package vector

import "fmt"

// Chunk is a horizontal slice of a relation: a set of equal-length column
// vectors holding up to ChunkCapacity rows. Chunks are the unit of data flow
// between physical operators.
type Chunk struct {
	cols   []*Vector
	length int
}

// NewChunk returns an empty chunk with one vector per type.
func NewChunk(types []Type) *Chunk {
	c := &Chunk{cols: make([]*Vector, len(types))}
	for i, t := range types {
		c.cols[i] = New(t, ChunkCapacity)
	}
	return c
}

// NumCols returns the number of columns.
func (c *Chunk) NumCols() int { return len(c.cols) }

// Len returns the number of rows.
func (c *Chunk) Len() int { return c.length }

// SetLen declares the row count after columns were filled directly.
// Every column must have exactly n rows.
func (c *Chunk) SetLen(n int) {
	for i, col := range c.cols {
		if col.Len() != n {
			panic(fmt.Sprintf("chunk.SetLen(%d): column %d has %d rows", n, i, col.Len()))
		}
	}
	c.length = n
}

// Col returns column i.
func (c *Chunk) Col(i int) *Vector { return c.cols[i] }

// Cols returns the backing column slice.
func (c *Chunk) Cols() []*Vector { return c.cols }

// Types returns the column types.
func (c *Chunk) Types() []Type {
	ts := make([]Type, len(c.cols))
	for i, col := range c.cols {
		ts[i] = col.Type()
	}
	return ts
}

// Reset truncates all columns to zero rows.
func (c *Chunk) Reset() {
	for _, col := range c.cols {
		col.Reset()
	}
	c.length = 0
}

// Full reports whether the chunk has reached its standard capacity.
func (c *Chunk) Full() bool { return c.length >= ChunkCapacity }

// AppendRowFrom appends row i of src into the chunk; column sets must match.
func (c *Chunk) AppendRowFrom(src *Chunk, i int) {
	for j, col := range c.cols {
		col.AppendFrom(src.cols[j], i)
	}
	c.length++
}

// AppendChunk bulk-appends every row of src (same column layout) using
// per-column range copies instead of per-row dispatch.
func (c *Chunk) AppendChunk(src *Chunk) {
	for j, col := range c.cols {
		col.AppendRange(src.cols[j], 0, src.length)
	}
	c.length += src.length
}

// AppendRowValues appends one row of boxed values.
func (c *Chunk) AppendRowValues(vals ...Value) {
	if len(vals) != len(c.cols) {
		panic(fmt.Sprintf("AppendRowValues: %d values for %d columns", len(vals), len(c.cols)))
	}
	for j, col := range c.cols {
		col.AppendValue(vals[j])
	}
	c.length++
}

// Row returns the boxed values of row i (allocates; for tests and results).
func (c *Chunk) Row(i int) []Value {
	row := make([]Value, len(c.cols))
	for j, col := range c.cols {
		row[j] = col.Value(i)
	}
	return row
}

// Hash computes a row hash for the given column indexes into dst, which is
// resized as needed and returned.
func (c *Chunk) Hash(colIdx []int, dst []uint64) []uint64 {
	n := c.length
	if cap(dst) < n {
		dst = make([]uint64, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = 0
	}
	for _, ci := range colIdx {
		c.cols[ci].HashInto(dst)
	}
	return dst
}

// MemBytes estimates the resident size of the chunk.
func (c *Chunk) MemBytes() int64 {
	var b int64
	for _, col := range c.cols {
		b += col.MemBytes()
	}
	return b
}

// Clone deep-copies the chunk.
func (c *Chunk) Clone() *Chunk {
	out := NewChunk(c.Types())
	for i := 0; i < c.length; i++ {
		out.AppendRowFrom(c, i)
	}
	return out
}
