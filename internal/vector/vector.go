package vector

import "fmt"

// Vector is a typed column of values with an optional null bitmap. Storage is
// a tagged union: exactly one of the data slices is in use, selected by the
// vector's type (ints doubles as the DATE representation).
type Vector struct {
	typ    Type
	length int

	ints   []int64
	floats []float64
	strs   []string
	bools  []bool

	// nulls is a bitmap with one bit per row; nil means "no nulls".
	nulls []uint64
}

// New returns an empty vector of the given type with capacity for cap rows.
func New(t Type, capacity int) *Vector {
	v := &Vector{typ: t}
	v.reserve(capacity)
	return v
}

func (v *Vector) reserve(capacity int) {
	switch v.typ {
	case TypeInt64, TypeDate:
		if cap(v.ints) < capacity {
			v.ints = append(make([]int64, 0, capacity), v.ints...)
		}
	case TypeFloat64:
		if cap(v.floats) < capacity {
			v.floats = append(make([]float64, 0, capacity), v.floats...)
		}
	case TypeString:
		if cap(v.strs) < capacity {
			v.strs = append(make([]string, 0, capacity), v.strs...)
		}
	case TypeBool:
		if cap(v.bools) < capacity {
			v.bools = append(make([]bool, 0, capacity), v.bools...)
		}
	default:
		panic(fmt.Sprintf("vector.New: invalid type %v", v.typ))
	}
}

// Type returns the vector's logical type.
func (v *Vector) Type() Type { return v.typ }

// Len returns the number of rows in the vector.
func (v *Vector) Len() int { return v.length }

// Reset truncates the vector to zero rows, keeping capacity.
func (v *Vector) Reset() {
	v.length = 0
	v.ints = v.ints[:0]
	v.floats = v.floats[:0]
	v.strs = v.strs[:0]
	v.bools = v.bools[:0]
	v.nulls = v.nulls[:0]
}

// HasNulls reports whether any row is NULL.
func (v *Vector) HasNulls() bool {
	for _, w := range v.nulls {
		if w != 0 {
			return true
		}
	}
	return false
}

// IsNull reports whether row i is NULL.
func (v *Vector) IsNull(i int) bool {
	w := i >> 6
	if w >= len(v.nulls) {
		return false
	}
	return v.nulls[w]&(1<<(uint(i)&63)) != 0
}

// SetNull marks row i as NULL. The row must already exist.
func (v *Vector) SetNull(i int) {
	w := i >> 6
	for len(v.nulls) <= w {
		v.nulls = append(v.nulls, 0)
	}
	v.nulls[w] |= 1 << (uint(i) & 63)
}

func (v *Vector) clearNull(i int) {
	w := i >> 6
	if w < len(v.nulls) {
		v.nulls[w] &^= 1 << (uint(i) & 63)
	}
}

// Int64s exposes the backing int64 slice (BIGINT and DATE vectors).
func (v *Vector) Int64s() []int64 { return v.ints }

// Float64s exposes the backing float64 slice (DOUBLE vectors).
func (v *Vector) Float64s() []float64 { return v.floats }

// Strings exposes the backing string slice (VARCHAR vectors).
func (v *Vector) Strings() []string { return v.strs }

// Bools exposes the backing bool slice (BOOLEAN vectors).
func (v *Vector) Bools() []bool { return v.bools }

// AppendInt64 appends an int64/date row.
func (v *Vector) AppendInt64(x int64) {
	v.ints = append(v.ints, x)
	v.length++
}

// AppendFloat64 appends a float64 row.
func (v *Vector) AppendFloat64(x float64) {
	v.floats = append(v.floats, x)
	v.length++
}

// AppendString appends a string row.
func (v *Vector) AppendString(x string) {
	v.strs = append(v.strs, x)
	v.length++
}

// AppendBool appends a bool row.
func (v *Vector) AppendBool(x bool) {
	v.bools = append(v.bools, x)
	v.length++
}

// AppendNull appends a NULL row (backing storage gets the zero value).
func (v *Vector) AppendNull() {
	switch v.typ {
	case TypeInt64, TypeDate:
		v.ints = append(v.ints, 0)
	case TypeFloat64:
		v.floats = append(v.floats, 0)
	case TypeString:
		v.strs = append(v.strs, "")
	case TypeBool:
		v.bools = append(v.bools, false)
	}
	v.length++
	v.SetNull(v.length - 1)
}

// AppendValue appends a boxed value, which must match the vector's type
// family (BIGINT accepts DATE and vice versa).
func (v *Vector) AppendValue(val Value) {
	if val.Null {
		v.AppendNull()
		return
	}
	switch v.typ {
	case TypeInt64, TypeDate:
		v.AppendInt64(val.I)
	case TypeFloat64:
		v.AppendFloat64(val.F)
	case TypeString:
		v.AppendString(val.S)
	case TypeBool:
		v.AppendBool(val.B)
	default:
		panic(fmt.Sprintf("AppendValue: invalid vector type %v", v.typ))
	}
}

// Value returns the boxed value at row i.
func (v *Vector) Value(i int) Value {
	if v.IsNull(i) {
		return NewNull(v.typ)
	}
	switch v.typ {
	case TypeInt64:
		return NewInt64(v.ints[i])
	case TypeDate:
		return NewDate(v.ints[i])
	case TypeFloat64:
		return NewFloat64(v.floats[i])
	case TypeString:
		return NewString(v.strs[i])
	case TypeBool:
		return NewBool(v.bools[i])
	default:
		return Value{}
	}
}

// AppendFrom appends row i of src (which must have the same type).
func (v *Vector) AppendFrom(src *Vector, i int) {
	if src.IsNull(i) {
		v.AppendNull()
		return
	}
	switch v.typ {
	case TypeInt64, TypeDate:
		v.AppendInt64(src.ints[i])
	case TypeFloat64:
		v.AppendFloat64(src.floats[i])
	case TypeString:
		v.AppendString(src.strs[i])
	case TypeBool:
		v.AppendBool(src.bools[i])
	}
}

// ResizeInt64 sets the vector to exactly n int64/date rows with no nulls and
// returns the backing slice for direct writes. Existing contents are
// unspecified; callers overwrite every row.
func (v *Vector) ResizeInt64(n int) []int64 {
	if cap(v.ints) < n {
		v.ints = make([]int64, n)
	} else {
		v.ints = v.ints[:n]
	}
	v.length = n
	v.nulls = v.nulls[:0]
	return v.ints
}

// ResizeFloat64 is ResizeInt64 for float64 vectors.
func (v *Vector) ResizeFloat64(n int) []float64 {
	if cap(v.floats) < n {
		v.floats = make([]float64, n)
	} else {
		v.floats = v.floats[:n]
	}
	v.length = n
	v.nulls = v.nulls[:0]
	return v.floats
}

// ResizeString is ResizeInt64 for string vectors.
func (v *Vector) ResizeString(n int) []string {
	if cap(v.strs) < n {
		v.strs = make([]string, n)
	} else {
		v.strs = v.strs[:n]
	}
	v.length = n
	v.nulls = v.nulls[:0]
	return v.strs
}

// ResizeBool is ResizeInt64 for bool vectors.
func (v *Vector) ResizeBool(n int) []bool {
	if cap(v.bools) < n {
		v.bools = make([]bool, n)
	} else {
		v.bools = v.bools[:n]
	}
	v.length = n
	v.nulls = v.nulls[:0]
	return v.bools
}

// NullWords exposes the raw null bitmap (one bit per row, LSB first); nil or
// short means the remaining rows are non-null.
func (v *Vector) NullWords() []uint64 { return v.nulls }

// EnsureNullWords grows the null bitmap to cover n rows, zeroing any newly
// exposed words, and returns it for direct bit manipulation.
func (v *Vector) EnsureNullWords(n int) []uint64 {
	words := (n + 63) >> 6
	if cap(v.nulls) < words {
		nw := make([]uint64, words)
		copy(nw, v.nulls)
		v.nulls = nw
	} else {
		old := len(v.nulls)
		v.nulls = v.nulls[:words]
		for i := old; i < words; i++ {
			v.nulls[i] = 0
		}
	}
	return v.nulls
}

// AppendRange bulk-appends rows [start, end) of src, which must have the same
// type family. Backing values are copied wholesale; null bits transfer per
// row only when src actually has nulls. Correct because null rows hold the
// zero value in backing storage (the AppendNull invariant).
func (v *Vector) AppendRange(src *Vector, start, end int) {
	if end <= start {
		return
	}
	switch v.typ {
	case TypeInt64, TypeDate:
		v.ints = append(v.ints, src.ints[start:end]...)
	case TypeFloat64:
		v.floats = append(v.floats, src.floats[start:end]...)
	case TypeString:
		v.strs = append(v.strs, src.strs[start:end]...)
	case TypeBool:
		v.bools = append(v.bools, src.bools[start:end]...)
	}
	base := v.length
	v.length += end - start
	if len(src.nulls) > 0 {
		for i := start; i < end; i++ {
			if src.IsNull(i) {
				v.SetNull(base + i - start)
			}
		}
	}
}

// HashInto combines the hash of each row into the accumulator slice, which
// must have at least Len entries.
func (v *Vector) HashInto(acc []uint64) {
	n := v.length
	switch v.typ {
	case TypeInt64, TypeDate:
		for i := 0; i < n; i++ {
			acc[i] = CombineHash(acc[i], mix64(uint64(v.ints[i])))
		}
	case TypeFloat64:
		for i := 0; i < n; i++ {
			acc[i] = CombineHash(acc[i], mix64(floatBits(v.floats[i])))
		}
	case TypeString:
		for i := 0; i < n; i++ {
			acc[i] = CombineHash(acc[i], hashString(v.strs[i]))
		}
	case TypeBool:
		for i := 0; i < n; i++ {
			h := uint64(2)
			if v.bools[i] {
				h = 1
			}
			acc[i] = CombineHash(acc[i], mix64(h))
		}
	}
	if len(v.nulls) > 0 {
		for i := 0; i < n; i++ {
			if v.IsNull(i) {
				acc[i] = CombineHash(acc[i], 0x9e3779b97f4a7c15)
			}
		}
	}
}

// MemBytes estimates the resident size of the vector in bytes, including
// string payloads. Used by the memory accountant that models the
// process-level (CRIU-style) image size.
func (v *Vector) MemBytes() int64 {
	var b int64
	b += int64(cap(v.ints)) * 8
	b += int64(cap(v.floats)) * 8
	b += int64(cap(v.bools))
	b += int64(cap(v.nulls)) * 8
	b += int64(cap(v.strs)) * 16
	for _, s := range v.strs {
		b += int64(len(s))
	}
	return b
}
