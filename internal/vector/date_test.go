package vector

import (
	"testing"
	"testing/quick"
	"time"
)

func TestDateRoundTripKnown(t *testing.T) {
	cases := []struct {
		s       string
		y, m, d int
	}{
		{"1970-01-01", 1970, 1, 1},
		{"1992-01-01", 1992, 1, 1},
		{"1998-12-31", 1998, 12, 31},
		{"2000-02-29", 2000, 2, 29},
		{"1995-06-17", 1995, 6, 17},
		{"1969-12-31", 1969, 12, 31},
	}
	for _, tc := range cases {
		days, err := ParseDate(tc.s)
		if err != nil {
			t.Fatalf("ParseDate(%q): %v", tc.s, err)
		}
		y, m, d := DateToYMD(days)
		if y != tc.y || m != tc.m || d != tc.d {
			t.Errorf("%q -> %d-%d-%d", tc.s, y, m, d)
		}
		if FormatDate(days) != tc.s {
			t.Errorf("FormatDate(%d) = %q, want %q", days, FormatDate(days), tc.s)
		}
	}
}

func TestDateMatchesTimePackage(t *testing.T) {
	// Cross-check the civil-date math against the standard library over the
	// full TPC-H range plus margins.
	start := time.Date(1960, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 20000; i += 7 {
		tm := start.AddDate(0, 0, i)
		want := int64(tm.Unix() / 86400)
		got := DateFromYMD(tm.Year(), int(tm.Month()), tm.Day())
		if got != want {
			t.Fatalf("DateFromYMD(%v) = %d, want %d", tm, got, want)
		}
		y, m, d := DateToYMD(got)
		if y != tm.Year() || m != int(tm.Month()) || d != tm.Day() {
			t.Fatalf("DateToYMD(%d) = %d-%d-%d, want %v", got, y, m, d, tm)
		}
	}
}

func TestDateRoundTripProperty(t *testing.T) {
	f := func(raw int32) bool {
		days := int64(raw % 100000)
		y, m, d := DateToYMD(days)
		return DateFromYMD(y, m, d) == days
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddMonths(t *testing.T) {
	cases := []struct {
		in   string
		n    int
		want string
	}{
		{"1995-01-31", 1, "1995-02-28"},
		{"1996-01-31", 1, "1996-02-29"},
		{"1995-12-15", 1, "1996-01-15"},
		{"1995-03-31", -1, "1995-02-28"},
		{"1995-06-17", 12, "1996-06-17"},
		{"1995-06-17", -18, "1993-12-17"},
		{"1994-01-01", 3, "1994-04-01"},
	}
	for _, tc := range cases {
		got := FormatDate(AddMonths(MustParseDate(tc.in), tc.n))
		if got != tc.want {
			t.Errorf("AddMonths(%s, %d) = %s, want %s", tc.in, tc.n, got, tc.want)
		}
	}
	if got := FormatDate(AddYears(MustParseDate("1994-02-14"), 2)); got != "1996-02-14" {
		t.Errorf("AddYears = %s", got)
	}
}

func TestDateYearMonth(t *testing.T) {
	d := MustParseDate("1997-09-03")
	if DateYear(d) != 1997 || DateMonth(d) != 9 {
		t.Errorf("year/month of 1997-09-03 = %d/%d", DateYear(d), DateMonth(d))
	}
}

func TestParseDateErrors(t *testing.T) {
	bad := []string{"not-a-date", "1995-13-01", "1995-02-30", "1995-00-10", ""}
	for _, s := range bad {
		if _, err := ParseDate(s); err == nil {
			t.Errorf("ParseDate(%q) should fail", s)
		}
	}
}

func TestMustParseDatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParseDate must panic on bad input")
		}
	}()
	MustParseDate("bogus")
}
