package vector

import "testing"

func TestResizeAccessors(t *testing.T) {
	v := New(TypeInt64, 4)
	v.AppendInt64(1)
	v.AppendNull()
	xs := v.ResizeInt64(3)
	if len(xs) != 3 || v.Len() != 3 {
		t.Fatalf("ResizeInt64 len = %d/%d", len(xs), v.Len())
	}
	if v.HasNulls() {
		t.Error("Resize must clear nulls")
	}
	xs[0], xs[1], xs[2] = 7, 8, 9
	if v.Int64s()[2] != 9 {
		t.Error("resize backing not shared")
	}
	// Growing past capacity reallocates; shrinking reuses.
	big := v.ResizeInt64(4096)
	if len(big) != 4096 {
		t.Fatal("grow failed")
	}
	f := New(TypeFloat64, 0)
	if len(f.ResizeFloat64(5)) != 5 {
		t.Error("ResizeFloat64")
	}
	s := New(TypeString, 0)
	if len(s.ResizeString(5)) != 5 {
		t.Error("ResizeString")
	}
	b := New(TypeBool, 0)
	if len(b.ResizeBool(5)) != 5 {
		t.Error("ResizeBool")
	}
}

func TestEnsureNullWords(t *testing.T) {
	v := New(TypeInt64, 0)
	v.ResizeInt64(100)
	w := v.EnsureNullWords(100)
	if len(w) != 2 {
		t.Fatalf("words = %d, want 2", len(w))
	}
	w[1] = 1 // row 64 null
	if !v.IsNull(64) || v.IsNull(63) {
		t.Error("bitmap not shared with vector")
	}
	// Shrink-then-grow must re-zero the re-exposed words, not resurrect bits.
	v.ResizeInt64(100)
	w = v.EnsureNullWords(100)
	if w[0] != 0 || w[1] != 0 {
		t.Error("EnsureNullWords exposed stale bits after reset")
	}
}

func TestAppendRange(t *testing.T) {
	src := New(TypeFloat64, 0)
	for i := 0; i < 70; i++ {
		if i == 5 || i == 68 {
			src.AppendNull()
		} else {
			src.AppendFloat64(float64(i))
		}
	}
	dst := New(TypeFloat64, 0)
	dst.AppendFloat64(-1)
	dst.AppendRange(src, 2, 70)
	if dst.Len() != 69 {
		t.Fatalf("len = %d, want 69", dst.Len())
	}
	if dst.Float64s()[0] != -1 || dst.Float64s()[1] != 2 {
		t.Error("values wrong")
	}
	// src row 5 lands at dst row 4; src row 68 at dst row 67.
	if !dst.IsNull(4) || !dst.IsNull(67) || dst.IsNull(5) {
		t.Error("null bits not transferred")
	}
	// Null rows carry zero backing per the engine invariant.
	if dst.Float64s()[4] != 0 || dst.Float64s()[67] != 0 {
		t.Error("null rows must hold zero backing")
	}

	// A source with no nulls must not materialize a bitmap in dst.
	s2 := New(TypeString, 0)
	s2.AppendString("x")
	s2.AppendString("y")
	d2 := New(TypeString, 0)
	d2.AppendRange(s2, 0, 2)
	if d2.HasNulls() || d2.Strings()[1] != "y" {
		t.Error("no-null AppendRange wrong")
	}
	// Empty range is a no-op.
	d2.AppendRange(s2, 1, 1)
	if d2.Len() != 2 {
		t.Error("empty range changed length")
	}
}

func TestChunkAppendChunk(t *testing.T) {
	types := []Type{TypeInt64, TypeString}
	src := NewChunk(types)
	src.AppendRowValues(NewInt64(1), NewString("a"))
	src.AppendRowValues(NewNull(TypeInt64), NewString("b"))
	dst := NewChunk(types)
	dst.AppendRowValues(NewInt64(9), NewNull(TypeString))
	dst.AppendChunk(src)
	if dst.Len() != 3 {
		t.Fatalf("len = %d, want 3", dst.Len())
	}
	if dst.Col(0).Int64s()[1] != 1 || !dst.Col(0).IsNull(2) {
		t.Error("column 0 wrong")
	}
	if dst.Col(1).Strings()[2] != "b" || !dst.Col(1).IsNull(0) {
		t.Error("column 1 wrong")
	}
}
