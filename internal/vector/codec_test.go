package vector

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func roundTripVector(t *testing.T, v *Vector) *Vector {
	t.Helper()
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	enc.Vector(v)
	if enc.Err() != nil {
		t.Fatalf("encode: %v", enc.Err())
	}
	dec := NewDecoder(bytes.NewReader(buf.Bytes()))
	got := dec.Vector()
	if dec.Err() != nil {
		t.Fatalf("decode: %v", dec.Err())
	}
	return got
}

func vectorsEqual(a, b *Vector) bool {
	if a.Type() != b.Type() || a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		av, bv := a.Value(i), b.Value(i)
		if av.Null != bv.Null {
			return false
		}
		if !av.Null && !av.Equal(bv) {
			// NaN compares unequal to itself via Compare; handle explicitly.
			if av.Type == TypeFloat64 && math.IsNaN(av.F) && math.IsNaN(bv.F) {
				continue
			}
			return false
		}
	}
	return true
}

func TestCodecVectorRoundTripAllTypes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	build := func(typ Type, n int) *Vector {
		v := New(typ, n)
		for i := 0; i < n; i++ {
			if rng.Intn(10) == 0 {
				v.AppendNull()
				continue
			}
			switch typ {
			case TypeInt64:
				v.AppendInt64(rng.Int63() - rng.Int63())
			case TypeDate:
				v.AppendInt64(int64(rng.Intn(20000)))
			case TypeFloat64:
				v.AppendFloat64(rng.NormFloat64() * 1e6)
			case TypeString:
				v.AppendString(randWord(rng))
			case TypeBool:
				v.AppendBool(rng.Intn(2) == 0)
			}
		}
		return v
	}
	for _, typ := range []Type{TypeInt64, TypeDate, TypeFloat64, TypeString, TypeBool} {
		for _, n := range []int{0, 1, 63, 64, 65, 500} {
			v := build(typ, n)
			got := roundTripVector(t, v)
			if !vectorsEqual(v, got) {
				t.Errorf("round trip mismatch type=%v n=%d", typ, n)
			}
		}
	}
}

func randWord(rng *rand.Rand) string {
	n := rng.Intn(20)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + rng.Intn(26))
	}
	return string(b)
}

func TestCodecChunkRoundTrip(t *testing.T) {
	c := NewChunk([]Type{TypeInt64, TypeString, TypeFloat64, TypeBool, TypeDate})
	for i := 0; i < 333; i++ {
		c.AppendRowValues(
			NewInt64(int64(i*i)),
			NewString("row"),
			NewFloat64(float64(i)/3),
			NewBool(i%2 == 0),
			NewDate(int64(9000+i)),
		)
	}
	c.Col(1).SetNull(5)

	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	enc.Chunk(c)
	if enc.Err() != nil {
		t.Fatal(enc.Err())
	}
	dec := NewDecoder(bytes.NewReader(buf.Bytes()))
	got := dec.Chunk()
	if dec.Err() != nil {
		t.Fatal(dec.Err())
	}
	if got.Len() != c.Len() || got.NumCols() != c.NumCols() {
		t.Fatalf("shape mismatch: %dx%d vs %dx%d", got.Len(), got.NumCols(), c.Len(), c.NumCols())
	}
	for j := 0; j < c.NumCols(); j++ {
		if !vectorsEqual(c.Col(j), got.Col(j)) {
			t.Errorf("column %d mismatch", j)
		}
	}
}

func TestCodecPrimitivesRoundTrip(t *testing.T) {
	f := func(u uint64, i int64, fl float64, s string, b bool) bool {
		var buf bytes.Buffer
		enc := NewEncoder(&buf)
		enc.Uvarint(u)
		enc.Varint(i)
		enc.Float64(fl)
		enc.String(s)
		enc.Bool(b)
		enc.Bytes([]byte(s))
		if enc.Err() != nil {
			return false
		}
		dec := NewDecoder(bytes.NewReader(buf.Bytes()))
		gu := dec.Uvarint()
		gi := dec.Varint()
		gf := dec.Float64()
		gs := dec.String()
		gb := dec.Bool()
		gbs := dec.Bytes()
		if dec.Err() != nil {
			return false
		}
		okF := gf == fl || (math.IsNaN(gf) && math.IsNaN(fl))
		return gu == u && gi == i && okF && gs == s && gb == b && string(gbs) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCodecValueRoundTrip(t *testing.T) {
	vals := []Value{
		NewInt64(-1234567),
		NewFloat64(3.14159),
		NewString("suspension"),
		NewBool(true),
		NewDate(12345),
		NewNull(TypeString),
		NewNull(TypeFloat64),
	}
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	for _, v := range vals {
		enc.Value(v)
	}
	if enc.Err() != nil {
		t.Fatal(enc.Err())
	}
	dec := NewDecoder(bytes.NewReader(buf.Bytes()))
	for i, want := range vals {
		got := dec.Value()
		if got.Type != want.Type || got.Null != want.Null || (!want.Null && !got.Equal(want)) {
			t.Errorf("value %d: got %v, want %v", i, got, want)
		}
	}
	if dec.Err() != nil {
		t.Fatal(dec.Err())
	}
}

func TestDecoderRejectsGarbage(t *testing.T) {
	dec := NewDecoder(bytes.NewReader([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}))
	if v := dec.Vector(); v != nil && dec.Err() == nil {
		t.Error("decoding garbage must fail or return nil")
	}

	dec2 := NewDecoder(bytes.NewReader(nil))
	dec2.Uvarint()
	if dec2.Err() == nil {
		t.Error("decoding empty input must set an error")
	}
}

func TestEncoderWrittenCountsBytes(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	enc.String("hello")
	enc.Uvarint(300)
	if enc.Written() != int64(buf.Len()) {
		t.Errorf("Written = %d, buffer = %d", enc.Written(), buf.Len())
	}
}
