// Package vector provides the columnar in-memory data representation used by
// the Riveter query engine: typed column vectors, fixed-capacity data chunks,
// scalar values, hashing, and a compact binary codec shared by the on-disk
// table format and the checkpoint machinery.
package vector

import "fmt"

// ChunkCapacity is the standard number of rows per DataChunk. Operators may
// produce shorter chunks but never longer ones.
const ChunkCapacity = 2048

// Type identifies the logical type of a vector or scalar value.
type Type uint8

// Supported logical types. Date is stored as days since the Unix epoch.
const (
	TypeInvalid Type = iota
	TypeBool
	TypeInt64
	TypeFloat64
	TypeString
	TypeDate
)

var typeNames = [...]string{
	TypeInvalid: "INVALID",
	TypeBool:    "BOOLEAN",
	TypeInt64:   "BIGINT",
	TypeFloat64: "DOUBLE",
	TypeString:  "VARCHAR",
	TypeDate:    "DATE",
}

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Valid reports whether t is one of the supported concrete types.
func (t Type) Valid() bool {
	return t > TypeInvalid && t <= TypeDate
}

// Numeric reports whether the type participates in arithmetic.
func (t Type) Numeric() bool {
	return t == TypeInt64 || t == TypeFloat64 || t == TypeDate
}

// FixedWidth returns the in-memory width in bytes of one value of the type,
// or 0 for variable-width types (strings).
func (t Type) FixedWidth() int {
	switch t {
	case TypeBool:
		return 1
	case TypeInt64, TypeFloat64, TypeDate:
		return 8
	case TypeString:
		return 0
	default:
		return 0
	}
}
