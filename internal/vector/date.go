package vector

import "fmt"

// Dates are represented as int64 days since the Unix epoch (1970-01-01).
// The civil-date conversions below use Howard Hinnant's proleptic Gregorian
// algorithms, valid across the whole TPC-H date range and far beyond.

// DateFromYMD converts a civil date to days since the Unix epoch.
func DateFromYMD(y, m, d int) int64 {
	yy := int64(y)
	if m <= 2 {
		yy--
	}
	era := yy / 400
	if yy < 0 && yy%400 != 0 {
		era--
	}
	yoe := yy - era*400 // [0, 399]
	var mp int64
	if m > 2 {
		mp = int64(m) - 3
	} else {
		mp = int64(m) + 9
	}
	doy := (153*mp+2)/5 + int64(d) - 1     // [0, 365]
	doe := yoe*365 + yoe/4 - yoe/100 + doy // [0, 146096]
	return era*146097 + doe - 719468       // shift epoch to 1970-01-01
}

// DateToYMD converts days since the Unix epoch to a civil date.
func DateToYMD(days int64) (y, m, d int) {
	z := days + 719468
	era := z / 146097
	if z < 0 && z%146097 != 0 {
		era--
	}
	doe := z - era*146097                                  // [0, 146096]
	yoe := (doe - doe/1460 + doe/36524 - doe/146096) / 365 // [0, 399]
	yy := yoe + era*400
	doy := doe - (365*yoe + yoe/4 - yoe/100) // [0, 365]
	mp := (5*doy + 2) / 153                  // [0, 11]
	d = int(doy - (153*mp+2)/5 + 1)
	if mp < 10 {
		m = int(mp + 3)
	} else {
		m = int(mp - 9)
	}
	if m <= 2 {
		yy++
	}
	return int(yy), m, d
}

// DateYear returns the calendar year of an epoch-day date.
func DateYear(days int64) int {
	y, _, _ := DateToYMD(days)
	return y
}

// DateMonth returns the calendar month (1-12) of an epoch-day date.
func DateMonth(days int64) int {
	_, m, _ := DateToYMD(days)
	return m
}

// AddMonths shifts a date by n calendar months, clamping the day of month
// to the length of the target month (SQL interval semantics).
func AddMonths(days int64, n int) int64 {
	y, m, d := DateToYMD(days)
	total := y*12 + (m - 1) + n
	ny, nm := total/12, total%12+1
	if nm < 1 {
		nm += 12
		ny--
	}
	if maxd := daysInMonth(ny, nm); d > maxd {
		d = maxd
	}
	return DateFromYMD(ny, nm, d)
}

// AddYears shifts a date by n calendar years.
func AddYears(days int64, n int) int64 { return AddMonths(days, 12*n) }

func daysInMonth(y, m int) int {
	switch m {
	case 1, 3, 5, 7, 8, 10, 12:
		return 31
	case 4, 6, 9, 11:
		return 30
	default:
		if (y%4 == 0 && y%100 != 0) || y%400 == 0 {
			return 29
		}
		return 28
	}
}

// FormatDate renders an epoch-day date as YYYY-MM-DD.
func FormatDate(days int64) string {
	y, m, d := DateToYMD(days)
	return fmt.Sprintf("%04d-%02d-%02d", y, m, d)
}

// ParseDate parses a YYYY-MM-DD string into epoch days.
func ParseDate(s string) (int64, error) {
	var y, m, d int
	if _, err := fmt.Sscanf(s, "%d-%d-%d", &y, &m, &d); err != nil {
		return 0, fmt.Errorf("parse date %q: %w", s, err)
	}
	if m < 1 || m > 12 || d < 1 || d > daysInMonth(y, m) {
		return 0, fmt.Errorf("parse date %q: out of range", s)
	}
	return DateFromYMD(y, m, d), nil
}

// MustParseDate is ParseDate that panics on malformed input; intended for
// compile-time-constant dates in query definitions and tests.
func MustParseDate(s string) int64 {
	d, err := ParseDate(s)
	if err != nil {
		panic(err)
	}
	return d
}
