package tpch

import (
	"strings"
	"testing"

	"github.com/riveterdb/riveter/internal/catalog"
	"github.com/riveterdb/riveter/internal/vector"
)

func genSmall(t testing.TB) *catalog.Catalog {
	t.Helper()
	cat, err := Generate(Config{SF: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestGenerateTableShapes(t *testing.T) {
	cat := genSmall(t)
	expect := map[string]int64{
		"region":   5,
		"nation":   25,
		"supplier": 100,
		"customer": 1500,
		"part":     2000,
		"partsupp": 8000,
		"orders":   15000,
	}
	for name, want := range expect {
		tbl, err := cat.Table(name)
		if err != nil {
			t.Fatalf("table %s: %v", name, err)
		}
		if tbl.NumRows() != want {
			t.Errorf("%s rows = %d, want %d", name, tbl.NumRows(), want)
		}
	}
	li, err := cat.Table("lineitem")
	if err != nil {
		t.Fatal(err)
	}
	// 1..7 lines per order, expectation 4: allow a generous band.
	if li.NumRows() < 45000 || li.NumRows() > 75000 {
		t.Errorf("lineitem rows = %d, want about 60000", li.NumRows())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Config{SF: 0.002, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{SF: 0.002, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range a.Names() {
		ta, _ := a.Table(name)
		tb, _ := b.Table(name)
		if ta.NumRows() != tb.NumRows() {
			t.Fatalf("%s row counts differ", name)
		}
		step := ta.NumRows()/50 + 1
		for r := int64(0); r < ta.NumRows(); r += step {
			for c := 0; c < ta.Schema().Arity(); c++ {
				va, vb := ta.Value(r, c), tb.Value(r, c)
				if !va.Equal(vb) {
					t.Fatalf("%s[%d][%d]: %v vs %v", name, r, c, va, vb)
				}
			}
		}
	}
	// A different seed changes the data.
	c, err := Generate(Config{SF: 0.002, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	ta, _ := a.Table("orders")
	tc, _ := c.Table("orders")
	same := true
	for r := int64(0); r < 20 && r < ta.NumRows(); r++ {
		if !ta.Value(r, 3).Equal(tc.Value(r, 3)) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should produce different data")
	}
}

func TestReferentialIntegrity(t *testing.T) {
	cat := genSmall(t)
	li, _ := cat.Table("lineitem")
	orders, _ := cat.Table("orders")
	part, _ := cat.Table("part")
	supp, _ := cat.Table("supplier")
	cust, _ := cat.Table("customer")

	nOrders, nPart, nSupp, nCust := orders.NumRows(), part.NumRows(), supp.NumRows(), cust.NumRows()
	for r := int64(0); r < li.NumRows(); r += 97 {
		ok := li.Value(r, 0).I
		pk := li.Value(r, 1).I
		sk := li.Value(r, 2).I
		if ok < 1 || ok > nOrders {
			t.Fatalf("lineitem orderkey %d out of range", ok)
		}
		if pk < 1 || pk > nPart {
			t.Fatalf("lineitem partkey %d out of range", pk)
		}
		if sk < 1 || sk > nSupp {
			t.Fatalf("lineitem suppkey %d out of range", sk)
		}
	}
	for r := int64(0); r < nOrders; r += 53 {
		ck := orders.Value(r, 1).I
		if ck < 1 || ck > nCust {
			t.Fatalf("order custkey %d out of range", ck)
		}
		if ck%3 == 0 {
			t.Fatalf("order custkey %d should not be divisible by 3", ck)
		}
	}
}

func TestDateAndValueRanges(t *testing.T) {
	cat := genSmall(t)
	li, _ := cat.Table("lineitem")
	sd := li.Schema().IndexOf("l_shipdate")
	cd := li.Schema().IndexOf("l_commitdate")
	rd := li.Schema().IndexOf("l_receiptdate")
	qy := li.Schema().IndexOf("l_quantity")
	dc := li.Schema().IndexOf("l_discount")
	for r := int64(0); r < li.NumRows(); r += 71 {
		ship := li.Value(r, sd).I
		receipt := li.Value(r, rd).I
		commit := li.Value(r, cd).I
		if ship < startDate || receipt <= ship || commit < startDate {
			t.Fatalf("row %d: bad dates ship=%d commit=%d receipt=%d", r, ship, commit, receipt)
		}
		q := li.Value(r, qy).F
		if q < 1 || q > 50 {
			t.Fatalf("quantity %v out of range", q)
		}
		d := li.Value(r, dc).F
		if d < 0 || d > 0.1 {
			t.Fatalf("discount %v out of range", d)
		}
	}
}

func TestVocabularySupportsQueryPredicates(t *testing.T) {
	cat := genSmall(t)
	// Q9/Q20 need parts whose names contain "green" / start with "forest".
	part, _ := cat.Table("part")
	nameIdx := part.Schema().IndexOf("p_name")
	var green, forest int
	for r := int64(0); r < part.NumRows(); r++ {
		n := part.Value(r, nameIdx).S
		if strings.Contains(n, "green") {
			green++
		}
		if strings.HasPrefix(n, "forest") {
			forest++
		}
	}
	if green == 0 || forest == 0 {
		t.Errorf("p_name vocabulary missing green (%d) / forest (%d) parts", green, forest)
	}
	// Q13 needs some orders with "special ... requests" comments but not all.
	orders, _ := cat.Table("orders")
	ci := orders.Schema().IndexOf("o_comment")
	var special int
	for r := int64(0); r < orders.NumRows(); r++ {
		c := orders.Value(r, ci).S
		if i := strings.Index(c, "special"); i >= 0 && strings.Contains(c[i:], "requests") {
			special++
		}
	}
	if special == 0 || int64(special) == orders.NumRows() {
		t.Errorf("o_comment special-requests count = %d of %d", special, orders.NumRows())
	}
	// Q19 ship modes must include both AIR and AIR REG.
	li, _ := cat.Table("lineitem")
	mi := li.Schema().IndexOf("l_shipmode")
	modes := map[string]bool{}
	for r := int64(0); r < li.NumRows(); r += 13 {
		modes[li.Value(r, mi).S] = true
	}
	if !modes["AIR"] || !modes["AIR REG"] {
		t.Errorf("ship modes seen: %v", modes)
	}
}

func TestRetailPriceFormula(t *testing.T) {
	if p := partRetailPrice(1); p <= 900 || p >= 2001 {
		t.Errorf("retail price of part 1 = %v", p)
	}
	if partRetailPrice(1) == partRetailPrice(2) {
		t.Error("prices should vary by part key")
	}
	cat := genSmall(t)
	part, _ := cat.Table("part")
	pi := part.Schema().IndexOf("p_retailprice")
	for r := int64(0); r < 10; r++ {
		want := partRetailPrice(part.Value(r, 0).I)
		if got := part.Value(r, pi).F; got != want {
			t.Fatalf("stored retail price %v != formula %v", got, want)
		}
	}
}

func TestScaledRowCounts(t *testing.T) {
	if scaled(10000, 0.01) != 100 {
		t.Error("scaled(10000, 0.01)")
	}
	if scaled(10, 0.0001) != 1 {
		t.Error("scaled must floor at 1")
	}
}

func TestRNGBasics(t *testing.T) {
	r := newRNG(1, "x")
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("intn(10) visited %d values", len(seen))
	}
	for i := 0; i < 1000; i++ {
		v := r.rangeI(5, 7)
		if v < 5 || v > 7 {
			t.Fatalf("rangeI out of range: %d", v)
		}
		f := r.rangeF(-1, 1)
		if f < -1 || f >= 1 {
			t.Fatalf("rangeF out of range: %v", f)
		}
	}
	p := r.phone(3)
	if len(p) != 15 || p[:2] != "13" {
		t.Errorf("phone = %q", p)
	}
	_ = vector.Value{}
}
