package tpch

import (
	"bytes"
	"context"
	"testing"

	"github.com/riveterdb/riveter/internal/engine"
	"github.com/riveterdb/riveter/internal/plan"
	"github.com/riveterdb/riveter/internal/vector"
)

func runQueryWith(t testing.TB, q Query, workers int, opts engine.CompileOptions) *engine.ResultSet {
	t.Helper()
	cat := queryCatalog(t)
	node := q.Build(plan.NewBuilder(cat), testSF)
	pp, err := engine.CompileWith(node, cat, opts)
	if err != nil {
		t.Fatalf("%s: compile: %v", q.Name, err)
	}
	ex := engine.NewExecutor(pp, engine.Options{Workers: workers})
	res, err := ex.Run(context.Background())
	if err != nil {
		t.Fatalf("%s: run: %v", q.Name, err)
	}
	return res
}

// TestQueriesKernelByteEquivalence runs all 22 TPC-H queries single-worker
// with the fused kernel layer on and off and demands byte-identical result
// buffers — same values, same float bit patterns, same null bitmaps.
func TestQueriesKernelByteEquivalence(t *testing.T) {
	for _, q := range All() {
		var on, off bytes.Buffer
		encOn, encOff := vector.NewEncoder(&on), vector.NewEncoder(&off)
		runQueryWith(t, q, 1, engine.CompileOptions{}).Buf.Save(encOn)
		runQueryWith(t, q, 1, engine.CompileOptions{NoFusedKernels: true}).Buf.Save(encOff)
		if encOn.Err() != nil || encOff.Err() != nil {
			t.Fatalf("%s: encode: %v / %v", q.Name, encOn.Err(), encOff.Err())
		}
		if !bytes.Equal(on.Bytes(), off.Bytes()) {
			t.Errorf("%s: fused and generic result buffers differ (%d vs %d bytes)",
				q.Name, on.Len(), off.Len())
		}
	}
}

// TestQueriesKernelMultiWorkerEquivalence compares fused multi-worker runs
// against the generic single-worker reference with the float-tolerant key
// (combine order varies across workers).
func TestQueriesKernelMultiWorkerEquivalence(t *testing.T) {
	for _, q := range All() {
		ref := runQueryWith(t, q, 1, engine.CompileOptions{NoFusedKernels: true}).SortedKey()
		if got := runQueryWith(t, q, 4, engine.CompileOptions{}).SortedKey(); got != ref {
			t.Errorf("%s: fused 4-worker result differs from generic reference", q.Name)
		}
	}
}
