package tpch

import (
	"fmt"

	"github.com/riveterdb/riveter/internal/expr"
	"github.com/riveterdb/riveter/internal/plan"
	"github.com/riveterdb/riveter/internal/vector"
)

// Query is one of the 22 TPC-H benchmark queries expressed as a logical
// plan builder. Q11's HAVING fraction is scale-dependent, so builders take
// the scale factor.
type Query struct {
	ID          int
	Name        string
	Description string
	Build       func(b *plan.Builder, sf float64) plan.Node
}

// All returns the 22 queries in order.
func All() []Query {
	return []Query{
		{1, "Q1", "pricing summary report", q1},
		{2, "Q2", "minimum cost supplier", q2},
		{3, "Q3", "shipping priority", q3},
		{4, "Q4", "order priority checking", q4},
		{5, "Q5", "local supplier volume", q5},
		{6, "Q6", "forecasting revenue change", q6},
		{7, "Q7", "volume shipping", q7},
		{8, "Q8", "national market share", q8},
		{9, "Q9", "product type profit measure", q9},
		{10, "Q10", "returned item reporting", q10},
		{11, "Q11", "important stock identification", q11},
		{12, "Q12", "shipping modes and order priority", q12},
		{13, "Q13", "customer distribution", q13},
		{14, "Q14", "promotion effect", q14},
		{15, "Q15", "top supplier", q15},
		{16, "Q16", "parts/supplier relationship", q16},
		{17, "Q17", "small-quantity-order revenue", q17},
		{18, "Q18", "large volume customer", q18},
		{19, "Q19", "discounted revenue", q19},
		{20, "Q20", "potential part promotion", q20},
		{21, "Q21", "suppliers who kept orders waiting", q21},
		{22, "Q22", "global sales opportunity", q22},
	}
}

// Get returns query 1..22.
func Get(id int) (Query, error) {
	if id < 1 || id > 22 {
		return Query{}, fmt.Errorf("tpch: no query Q%d", id)
	}
	return All()[id-1], nil
}

// revenue returns l_extendedprice * (1 - l_discount) over a relation that
// exposes both columns.
func revenue(r *plan.Rel) expr.Expr {
	return expr.Mul(r.Col("l_extendedprice"), expr.Sub(expr.Float(1), r.Col("l_discount")))
}

func q1(b *plan.Builder, _ float64) plan.Node {
	l := b.Scan("lineitem", "l_returnflag", "l_linestatus", "l_quantity",
		"l_extendedprice", "l_discount", "l_tax", "l_shipdate")
	f := l.Filter(expr.Le(l.Col("l_shipdate"), expr.Date("1998-09-02")))
	disc := revenue(f)
	charge := expr.Mul(disc, expr.Add(expr.Float(1), f.Col("l_tax")))
	return f.Agg([]string{"l_returnflag", "l_linestatus"},
		plan.Sum(f.Col("l_quantity"), "sum_qty"),
		plan.Sum(f.Col("l_extendedprice"), "sum_base_price"),
		plan.Sum(disc, "sum_disc_price"),
		plan.Sum(charge, "sum_charge"),
		plan.Avg(f.Col("l_quantity"), "avg_qty"),
		plan.Avg(f.Col("l_extendedprice"), "avg_price"),
		plan.Avg(f.Col("l_discount"), "avg_disc"),
		plan.CountStar("count_order"),
	).Sort(plan.Asc("l_returnflag"), plan.Asc("l_linestatus")).Node()
}

// suppliersInRegion joins supplier with nation and the named region.
func suppliersInRegion(b *plan.Builder, regionName string) *plan.Rel {
	r := b.Scan("region", "r_regionkey", "r_name")
	r = r.Filter(expr.Eq(r.Col("r_name"), expr.Str(regionName)))
	n := b.Scan("nation", "n_nationkey", "n_name", "n_regionkey")
	nr := n.Join(r, plan.InnerJoin, []string{"n_regionkey"}, []string{"r_regionkey"})
	s := b.Scan("supplier", "s_suppkey", "s_name", "s_address", "s_nationkey", "s_phone", "s_acctbal", "s_comment")
	return s.Join(nr, plan.InnerJoin, []string{"s_nationkey"}, []string{"n_nationkey"})
}

func q2(b *plan.Builder, _ float64) plan.Node {
	sn := suppliersInRegion(b, "EUROPE")
	ps := b.Scan("partsupp", "ps_partkey", "ps_suppkey", "ps_supplycost")
	pssn := ps.Join(sn, plan.InnerJoin, []string{"ps_suppkey"}, []string{"s_suppkey"})
	minCost := pssn.Agg([]string{"ps_partkey"}, plan.Min(pssn.Col("ps_supplycost"), "min_cost")).
		Rename("m.")

	p := b.Scan("part", "p_partkey", "p_mfgr", "p_size", "p_type")
	p = p.Filter(expr.And(
		expr.Eq(p.Col("p_size"), expr.Int(15)),
		expr.Like(p.Col("p_type"), "%BRASS"),
	))
	j := p.Join(pssn, plan.InnerJoin, []string{"p_partkey"}, []string{"ps_partkey"})
	j = j.Join(minCost, plan.InnerJoin,
		[]string{"p_partkey", "ps_supplycost"}, []string{"m.ps_partkey", "m.min_cost"})
	return j.Keep("s_acctbal", "s_name", "n_name", "p_partkey", "p_mfgr", "s_address", "s_phone", "s_comment").
		Sort(plan.Desc("s_acctbal"), plan.Asc("n_name"), plan.Asc("s_name"), plan.Asc("p_partkey")).
		Limit(100).Node()
}

func q3(b *plan.Builder, _ float64) plan.Node {
	c := b.Scan("customer", "c_custkey", "c_mktsegment")
	c = c.Filter(expr.Eq(c.Col("c_mktsegment"), expr.Str("BUILDING")))
	o := b.Scan("orders", "o_orderkey", "o_custkey", "o_orderdate", "o_shippriority")
	o = o.Filter(expr.Lt(o.Col("o_orderdate"), expr.Date("1995-03-15")))
	l := b.Scan("lineitem", "l_orderkey", "l_extendedprice", "l_discount", "l_shipdate")
	l = l.Filter(expr.Gt(l.Col("l_shipdate"), expr.Date("1995-03-15")))

	oc := o.Join(c, plan.InnerJoin, []string{"o_custkey"}, []string{"c_custkey"})
	loc := l.Join(oc, plan.InnerJoin, []string{"l_orderkey"}, []string{"o_orderkey"})
	return loc.Agg([]string{"l_orderkey", "o_orderdate", "o_shippriority"},
		plan.Sum(revenue(loc), "revenue"),
	).Sort(plan.Desc("revenue"), plan.Asc("o_orderdate")).Limit(10).Node()
}

func q4(b *plan.Builder, _ float64) plan.Node {
	o := b.Scan("orders", "o_orderkey", "o_orderdate", "o_orderpriority")
	o = o.Filter(expr.And(
		expr.Ge(o.Col("o_orderdate"), expr.Date("1993-07-01")),
		expr.Lt(o.Col("o_orderdate"), expr.Date("1993-10-01")),
	))
	l := b.Scan("lineitem", "l_orderkey", "l_commitdate", "l_receiptdate")
	l = l.Filter(expr.Lt(l.Col("l_commitdate"), l.Col("l_receiptdate")))
	return o.Join(l, plan.SemiJoin, []string{"o_orderkey"}, []string{"l_orderkey"}).
		Agg([]string{"o_orderpriority"}, plan.CountStar("order_count")).
		Sort(plan.Asc("o_orderpriority")).Node()
}

func q5(b *plan.Builder, _ float64) plan.Node {
	sn := suppliersInRegion(b, "ASIA")
	c := b.Scan("customer", "c_custkey", "c_nationkey")
	o := b.Scan("orders", "o_orderkey", "o_custkey", "o_orderdate")
	o = o.Filter(expr.And(
		expr.Ge(o.Col("o_orderdate"), expr.Date("1994-01-01")),
		expr.Lt(o.Col("o_orderdate"), expr.Date("1995-01-01")),
	))
	oc := o.Join(c, plan.InnerJoin, []string{"o_custkey"}, []string{"c_custkey"})
	l := b.Scan("lineitem", "l_orderkey", "l_suppkey", "l_extendedprice", "l_discount")
	lo := l.Join(oc, plan.InnerJoin, []string{"l_orderkey"}, []string{"o_orderkey"})
	// Local suppliers only: supplier nation must equal customer nation.
	j := lo.Join(sn, plan.InnerJoin,
		[]string{"l_suppkey", "c_nationkey"}, []string{"s_suppkey", "s_nationkey"})
	return j.Agg([]string{"n_name"}, plan.Sum(revenue(j), "revenue")).
		Sort(plan.Desc("revenue")).Node()
}

func q6(b *plan.Builder, _ float64) plan.Node {
	l := b.Scan("lineitem", "l_quantity", "l_extendedprice", "l_discount", "l_shipdate")
	l = l.Filter(expr.And(
		expr.Ge(l.Col("l_shipdate"), expr.Date("1994-01-01")),
		expr.Lt(l.Col("l_shipdate"), expr.Date("1995-01-01")),
		expr.Between(l.Col("l_discount"), expr.Float(0.05), expr.Float(0.07)),
		expr.Lt(l.Col("l_quantity"), expr.Float(24)),
	))
	return l.Agg(nil,
		plan.Sum(expr.Mul(l.Col("l_extendedprice"), l.Col("l_discount")), "revenue"),
	).Node()
}

func q7(b *plan.Builder, _ float64) plan.Node {
	n1 := b.Scan("nation", "n_nationkey", "n_name")
	s := b.Scan("supplier", "s_suppkey", "s_nationkey")
	sn := s.Join(n1, plan.InnerJoin, []string{"s_nationkey"}, []string{"n_nationkey"})
	n2 := b.Scan("nation", "n_nationkey", "n_name").Rename("c.")
	c := b.Scan("customer", "c_custkey", "c_nationkey")
	cn := c.Join(n2, plan.InnerJoin, []string{"c_nationkey"}, []string{"c.n_nationkey"})
	o := b.Scan("orders", "o_orderkey", "o_custkey")
	oc := o.Join(cn, plan.InnerJoin, []string{"o_custkey"}, []string{"c_custkey"})
	l := b.Scan("lineitem", "l_orderkey", "l_suppkey", "l_extendedprice", "l_discount", "l_shipdate")
	l = l.Filter(expr.Between(l.Col("l_shipdate"), expr.Date("1995-01-01"), expr.Date("1996-12-31")))
	j := l.Join(oc, plan.InnerJoin, []string{"l_orderkey"}, []string{"o_orderkey"})
	j = j.Join(sn, plan.InnerJoin, []string{"l_suppkey"}, []string{"s_suppkey"})
	j = j.Filter(expr.Or(
		expr.And(expr.Eq(j.Col("n_name"), expr.Str("FRANCE")), expr.Eq(j.Col("c.n_name"), expr.Str("GERMANY"))),
		expr.And(expr.Eq(j.Col("n_name"), expr.Str("GERMANY")), expr.Eq(j.Col("c.n_name"), expr.Str("FRANCE"))),
	))
	proj := j.Project(
		[]string{"supp_nation", "cust_nation", "l_year", "volume"},
		j.Col("n_name"), j.Col("c.n_name"),
		expr.ExtractYear(j.Col("l_shipdate")), revenue(j),
	)
	return proj.Agg([]string{"supp_nation", "cust_nation", "l_year"},
		plan.Sum(proj.Col("volume"), "revenue"),
	).Sort(plan.Asc("supp_nation"), plan.Asc("cust_nation"), plan.Asc("l_year")).Node()
}

func q8(b *plan.Builder, _ float64) plan.Node {
	p := b.Scan("part", "p_partkey", "p_type")
	p = p.Filter(expr.Eq(p.Col("p_type"), expr.Str("ECONOMY ANODIZED STEEL")))
	l := b.Scan("lineitem", "l_orderkey", "l_partkey", "l_suppkey", "l_extendedprice", "l_discount")
	lp := l.Join(p, plan.InnerJoin, []string{"l_partkey"}, []string{"p_partkey"})

	s := b.Scan("supplier", "s_suppkey", "s_nationkey")
	n2 := b.Scan("nation", "n_nationkey", "n_name").Rename("s.")
	sn := s.Join(n2, plan.InnerJoin, []string{"s_nationkey"}, []string{"s.n_nationkey"})
	lps := lp.Join(sn, plan.InnerJoin, []string{"l_suppkey"}, []string{"s_suppkey"})

	// The (part ⋈ lineitem ⋈ supplier) intermediate is the smaller estimated
	// side, so it is the hash-build side of the join with orders — the
	// build-side choice DuckDB's optimizer makes, and the reason the paper's
	// Fig. 8 flags Q8 as retaining an entire (SF-scaling) hash table when
	// suspended mid-pipeline.
	o := b.Scan("orders", "o_orderkey", "o_custkey", "o_orderdate")
	o = o.Filter(expr.Between(o.Col("o_orderdate"), expr.Date("1995-01-01"), expr.Date("1996-12-31")))
	j := o.Join(lps, plan.InnerJoin, []string{"o_orderkey"}, []string{"l_orderkey"})

	r := b.Scan("region", "r_regionkey", "r_name")
	r = r.Filter(expr.Eq(r.Col("r_name"), expr.Str("AMERICA")))
	n1 := b.Scan("nation", "n_nationkey", "n_regionkey")
	nr := n1.Join(r, plan.InnerJoin, []string{"n_regionkey"}, []string{"r_regionkey"})
	c := b.Scan("customer", "c_custkey", "c_nationkey")
	cn := c.Join(nr, plan.InnerJoin, []string{"c_nationkey"}, []string{"n_nationkey"})
	j = j.Join(cn, plan.InnerJoin, []string{"o_custkey"}, []string{"c_custkey"})

	vol := revenue(j)
	proj := j.Project(
		[]string{"o_year", "volume", "nation"},
		expr.ExtractYear(j.Col("o_orderdate")), vol, j.Col("s.n_name"),
	)
	agg := proj.Agg([]string{"o_year"},
		plan.Sum(expr.When(
			expr.Eq(proj.Col("nation"), expr.Str("BRAZIL")),
			proj.Col("volume"), expr.Float(0)), "brazil_volume"),
		plan.Sum(proj.Col("volume"), "total_volume"),
	)
	return agg.Project(
		[]string{"o_year", "mkt_share"},
		agg.Col("o_year"),
		expr.Div(agg.Col("brazil_volume"), agg.Col("total_volume")),
	).Sort(plan.Asc("o_year")).Node()
}

func q9(b *plan.Builder, _ float64) plan.Node {
	p := b.Scan("part", "p_partkey", "p_name")
	p = p.Filter(expr.Like(p.Col("p_name"), "%green%"))
	l := b.Scan("lineitem", "l_orderkey", "l_partkey", "l_suppkey", "l_quantity", "l_extendedprice", "l_discount")
	lp := l.Join(p, plan.InnerJoin, []string{"l_partkey"}, []string{"p_partkey"})

	s := b.Scan("supplier", "s_suppkey", "s_nationkey")
	n := b.Scan("nation", "n_nationkey", "n_name")
	sn := s.Join(n, plan.InnerJoin, []string{"s_nationkey"}, []string{"n_nationkey"})
	j := lp.Join(sn, plan.InnerJoin, []string{"l_suppkey"}, []string{"s_suppkey"})

	ps := b.Scan("partsupp", "ps_partkey", "ps_suppkey", "ps_supplycost")
	j = j.Join(ps, plan.InnerJoin, []string{"l_suppkey", "l_partkey"}, []string{"ps_suppkey", "ps_partkey"})

	// The filtered lineitem chain is the smaller estimated side and becomes
	// the build of the join with orders (DuckDB's choice; see Fig. 8).
	o := b.Scan("orders", "o_orderkey", "o_orderdate")
	j = o.Join(j, plan.InnerJoin, []string{"o_orderkey"}, []string{"l_orderkey"})

	amount := expr.Sub(revenue(j),
		expr.Mul(j.Col("ps_supplycost"), j.Col("l_quantity")))
	proj := j.Project(
		[]string{"nation", "o_year", "amount"},
		j.Col("n_name"), expr.ExtractYear(j.Col("o_orderdate")), amount,
	)
	return proj.Agg([]string{"nation", "o_year"}, plan.Sum(proj.Col("amount"), "sum_profit")).
		Sort(plan.Asc("nation"), plan.Desc("o_year")).Node()
}

func q10(b *plan.Builder, _ float64) plan.Node {
	o := b.Scan("orders", "o_orderkey", "o_custkey", "o_orderdate")
	o = o.Filter(expr.And(
		expr.Ge(o.Col("o_orderdate"), expr.Date("1993-10-01")),
		expr.Lt(o.Col("o_orderdate"), expr.Date("1994-01-01")),
	))
	l := b.Scan("lineitem", "l_orderkey", "l_extendedprice", "l_discount", "l_returnflag")
	l = l.Filter(expr.Eq(l.Col("l_returnflag"), expr.Str("R")))
	lo := l.Join(o, plan.InnerJoin, []string{"l_orderkey"}, []string{"o_orderkey"})
	c := b.Scan("customer", "c_custkey", "c_name", "c_acctbal", "c_phone", "c_nationkey", "c_address", "c_comment")
	loc := lo.Join(c, plan.InnerJoin, []string{"o_custkey"}, []string{"c_custkey"})
	n := b.Scan("nation", "n_nationkey", "n_name")
	j := loc.Join(n, plan.InnerJoin, []string{"c_nationkey"}, []string{"n_nationkey"})
	return j.Agg(
		[]string{"c_custkey", "c_name", "c_acctbal", "c_phone", "n_name", "c_address", "c_comment"},
		plan.Sum(revenue(j), "revenue"),
	).Sort(plan.Desc("revenue")).Limit(20).Node()
}

func q11(b *plan.Builder, sf float64) plan.Node {
	build := func() *plan.Rel {
		n := b.Scan("nation", "n_nationkey", "n_name")
		n = n.Filter(expr.Eq(n.Col("n_name"), expr.Str("GERMANY")))
		s := b.Scan("supplier", "s_suppkey", "s_nationkey")
		sn := s.Join(n, plan.InnerJoin, []string{"s_nationkey"}, []string{"n_nationkey"})
		ps := b.Scan("partsupp", "ps_partkey", "ps_suppkey", "ps_availqty", "ps_supplycost")
		return ps.Join(sn, plan.InnerJoin, []string{"ps_suppkey"}, []string{"s_suppkey"})
	}
	value := func(r *plan.Rel) expr.Expr {
		return expr.Mul(r.Col("ps_supplycost"), expr.ToFloat(r.Col("ps_availqty")))
	}
	grouped := build()
	g := grouped.Agg([]string{"ps_partkey"}, plan.Sum(value(grouped), "value"))
	total := build()
	tot := total.Agg(nil, plan.Sum(value(total), "total_value"))
	// The spec's HAVING fraction is 0.0001/SF.
	frac := 0.0001 / sf
	j := g.Cross(tot)
	return j.Filter(expr.Gt(j.Col("value"), expr.Mul(j.Col("total_value"), expr.Float(frac)))).
		Keep("ps_partkey", "value").
		Sort(plan.Desc("value")).Node()
}

func q12(b *plan.Builder, _ float64) plan.Node {
	l := b.Scan("lineitem", "l_orderkey", "l_shipmode", "l_shipdate", "l_commitdate", "l_receiptdate")
	l = l.Filter(expr.And(
		expr.InStrings(l.Col("l_shipmode"), "MAIL", "SHIP"),
		expr.Lt(l.Col("l_commitdate"), l.Col("l_receiptdate")),
		expr.Lt(l.Col("l_shipdate"), l.Col("l_commitdate")),
		expr.Ge(l.Col("l_receiptdate"), expr.Date("1994-01-01")),
		expr.Lt(l.Col("l_receiptdate"), expr.Date("1995-01-01")),
	))
	// The heavily filtered lineitem is the smaller estimated side: orders
	// probes it (DuckDB's build-side choice; Fig. 8 flags Q12's suspension
	// as retaining this SF-scaling hash table).
	o := b.Scan("orders", "o_orderkey", "o_orderpriority")
	j := o.Join(l, plan.InnerJoin, []string{"o_orderkey"}, []string{"l_orderkey"})
	isHigh := expr.InStrings(j.Col("o_orderpriority"), "1-URGENT", "2-HIGH")
	return j.Agg([]string{"l_shipmode"},
		plan.Sum(expr.When(isHigh, expr.Int(1), expr.Int(0)), "high_line_count"),
		plan.Sum(expr.When(isHigh, expr.Int(0), expr.Int(1)), "low_line_count"),
	).Sort(plan.Asc("l_shipmode")).Node()
}

func q13(b *plan.Builder, _ float64) plan.Node {
	c := b.Scan("customer", "c_custkey")
	o := b.Scan("orders", "o_orderkey", "o_custkey", "o_comment")
	o = o.Filter(expr.NotLike(o.Col("o_comment"), "%special%requests%"))
	co := c.Join(o, plan.LeftOuterJoin, []string{"c_custkey"}, []string{"o_custkey"})
	counts := co.Agg([]string{"c_custkey"}, plan.Count(co.Col("o_orderkey"), "c_count"))
	return counts.Agg([]string{"c_count"}, plan.CountStar("custdist")).
		Sort(plan.Desc("custdist"), plan.Desc("c_count")).Node()
}

func q14(b *plan.Builder, _ float64) plan.Node {
	l := b.Scan("lineitem", "l_partkey", "l_extendedprice", "l_discount", "l_shipdate")
	l = l.Filter(expr.And(
		expr.Ge(l.Col("l_shipdate"), expr.Date("1995-09-01")),
		expr.Lt(l.Col("l_shipdate"), expr.Date("1995-10-01")),
	))
	p := b.Scan("part", "p_partkey", "p_type")
	j := l.Join(p, plan.InnerJoin, []string{"l_partkey"}, []string{"p_partkey"})
	vol := revenue(j)
	agg := j.Agg(nil,
		plan.Sum(expr.When(expr.Like(j.Col("p_type"), "PROMO%"), vol, expr.Float(0)), "promo"),
		plan.Sum(vol, "total"),
	)
	return agg.Project([]string{"promo_revenue"},
		expr.Div(expr.Mul(expr.Float(100), agg.Col("promo")), agg.Col("total")),
	).Node()
}

func q15(b *plan.Builder, _ float64) plan.Node {
	l := b.Scan("lineitem", "l_suppkey", "l_extendedprice", "l_discount", "l_shipdate")
	l = l.Filter(expr.And(
		expr.Ge(l.Col("l_shipdate"), expr.Date("1996-01-01")),
		expr.Lt(l.Col("l_shipdate"), expr.Date("1996-04-01")),
	))
	rev := l.Agg([]string{"l_suppkey"}, plan.Sum(revenue(l), "total_revenue"))
	maxRev := rev.Agg(nil, plan.Max(rev.Col("total_revenue"), "max_revenue"))
	s := b.Scan("supplier", "s_suppkey", "s_name", "s_address", "s_phone")
	j := s.Join(rev, plan.InnerJoin, []string{"s_suppkey"}, []string{"l_suppkey"}).Cross(maxRev)
	return j.Filter(expr.Eq(j.Col("total_revenue"), j.Col("max_revenue"))).
		Keep("s_suppkey", "s_name", "s_address", "s_phone", "total_revenue").
		Sort(plan.Asc("s_suppkey")).Node()
}

func q16(b *plan.Builder, _ float64) plan.Node {
	p := b.Scan("part", "p_partkey", "p_brand", "p_type", "p_size")
	p = p.Filter(expr.And(
		expr.Ne(p.Col("p_brand"), expr.Str("Brand#45")),
		expr.NotLike(p.Col("p_type"), "MEDIUM POLISHED%"),
		expr.In(p.Col("p_size"),
			vector.NewInt64(49), vector.NewInt64(14), vector.NewInt64(23), vector.NewInt64(45),
			vector.NewInt64(19), vector.NewInt64(3), vector.NewInt64(36), vector.NewInt64(9)),
	))
	ps := b.Scan("partsupp", "ps_partkey", "ps_suppkey")
	j := ps.Join(p, plan.InnerJoin, []string{"ps_partkey"}, []string{"p_partkey"})
	bad := b.Scan("supplier", "s_suppkey", "s_comment")
	bad = bad.Filter(expr.Like(bad.Col("s_comment"), "%Customer%Complaints%"))
	j = j.Join(bad, plan.AntiJoin, []string{"ps_suppkey"}, []string{"s_suppkey"})
	return j.Agg([]string{"p_brand", "p_type", "p_size"},
		plan.CountDistinct(j.Col("ps_suppkey"), "supplier_cnt"),
	).Sort(plan.Desc("supplier_cnt"), plan.Asc("p_brand"), plan.Asc("p_type"), plan.Asc("p_size")).Node()
}

func q17(b *plan.Builder, _ float64) plan.Node {
	p := b.Scan("part", "p_partkey", "p_brand", "p_container")
	p = p.Filter(expr.And(
		expr.Eq(p.Col("p_brand"), expr.Str("Brand#23")),
		expr.Eq(p.Col("p_container"), expr.Str("MED BOX")),
	))
	l := b.Scan("lineitem", "l_partkey", "l_quantity", "l_extendedprice")
	lp := l.Join(p, plan.InnerJoin, []string{"l_partkey"}, []string{"p_partkey"})

	// The brand/container filter keeps a handful of parts, so the
	// (lineitem ⋈ part) side is tiny and becomes the hash-build side; the
	// per-partkey average aggregate (SF-scaling) probes it.
	l2 := b.Scan("lineitem", "l_partkey", "l_quantity")
	avgQty := l2.Agg([]string{"l_partkey"}, plan.Avg(l2.Col("l_quantity"), "avg_qty")).Rename("a.")
	j := avgQty.Join(lp, plan.InnerJoin, []string{"a.l_partkey"}, []string{"l_partkey"})
	j = j.Filter(expr.Lt(j.Col("l_quantity"), expr.Mul(expr.Float(0.2), j.Col("a.avg_qty"))))
	agg := j.Agg(nil, plan.Sum(j.Col("l_extendedprice"), "sum_price"))
	return agg.Project([]string{"avg_yearly"},
		expr.Div(agg.Col("sum_price"), expr.Float(7)),
	).Node()
}

func q18(b *plan.Builder, _ float64) plan.Node {
	lAgg := b.Scan("lineitem", "l_orderkey", "l_quantity")
	big := lAgg.Agg([]string{"l_orderkey"}, plan.Sum(lAgg.Col("l_quantity"), "sum_qty"))
	big = big.Filter(expr.Gt(big.Col("sum_qty"), expr.Float(300))).Keep("l_orderkey").Rename("big.")

	o := b.Scan("orders", "o_orderkey", "o_custkey", "o_orderdate", "o_totalprice")
	o = o.Join(big, plan.SemiJoin, []string{"o_orderkey"}, []string{"big.l_orderkey"})
	c := b.Scan("customer", "c_custkey", "c_name")
	oc := o.Join(c, plan.InnerJoin, []string{"o_custkey"}, []string{"c_custkey"})
	l := b.Scan("lineitem", "l_orderkey", "l_quantity")
	j := l.Join(oc, plan.InnerJoin, []string{"l_orderkey"}, []string{"o_orderkey"})
	return j.Agg([]string{"c_name", "c_custkey", "o_orderkey", "o_orderdate", "o_totalprice"},
		plan.Sum(j.Col("l_quantity"), "sum_qty"),
	).Sort(plan.Desc("o_totalprice"), plan.Asc("o_orderdate")).Limit(100).Node()
}

func q19(b *plan.Builder, _ float64) plan.Node {
	l := b.Scan("lineitem", "l_partkey", "l_quantity", "l_extendedprice", "l_discount", "l_shipinstruct", "l_shipmode")
	l = l.Filter(expr.And(
		expr.InStrings(l.Col("l_shipmode"), "AIR", "AIR REG"),
		expr.Eq(l.Col("l_shipinstruct"), expr.Str("DELIVER IN PERSON")),
	))
	p := b.Scan("part", "p_partkey", "p_brand", "p_size", "p_container")
	branch := func(cr plan.ColResolver, brand string, containers []string, qlo, qhi float64, sizeHi int64) expr.Expr {
		return expr.And(
			expr.Eq(cr.Col("p_brand"), expr.Str(brand)),
			expr.InStrings(cr.Col("p_container"), containers...),
			expr.Ge(cr.Col("l_quantity"), expr.Float(qlo)),
			expr.Le(cr.Col("l_quantity"), expr.Float(qhi)),
			expr.Between(cr.Col("p_size"), expr.Int(1), expr.Int(sizeHi)),
		)
	}
	j := l.JoinExtra(p, plan.InnerJoin, []string{"l_partkey"}, []string{"p_partkey"},
		func(cr plan.ColResolver) expr.Expr {
			return expr.Or(
				branch(cr, "Brand#12", []string{"SM CASE", "SM BOX", "SM PACK", "SM PKG"}, 1, 11, 5),
				branch(cr, "Brand#23", []string{"MED BAG", "MED BOX", "MED PKG", "MED PACK"}, 10, 20, 10),
				branch(cr, "Brand#34", []string{"LG CASE", "LG BOX", "LG PACK", "LG PKG"}, 20, 30, 15),
			)
		})
	return j.Agg(nil, plan.Sum(revenue(j), "revenue")).Node()
}

func q20(b *plan.Builder, _ float64) plan.Node {
	forest := b.Scan("part", "p_partkey", "p_name")
	forest = forest.Filter(expr.Like(forest.Col("p_name"), "forest%"))
	shipped := b.Scan("lineitem", "l_partkey", "l_suppkey", "l_quantity", "l_shipdate")
	shipped = shipped.Filter(expr.And(
		expr.Ge(shipped.Col("l_shipdate"), expr.Date("1994-01-01")),
		expr.Lt(shipped.Col("l_shipdate"), expr.Date("1995-01-01")),
	))
	sumQty := shipped.Agg([]string{"l_partkey", "l_suppkey"}, plan.Sum(shipped.Col("l_quantity"), "sum_qty"))

	ps := b.Scan("partsupp", "ps_partkey", "ps_suppkey", "ps_availqty")
	ps = ps.Join(forest, plan.SemiJoin, []string{"ps_partkey"}, []string{"p_partkey"})
	j := ps.Join(sumQty, plan.InnerJoin,
		[]string{"ps_partkey", "ps_suppkey"}, []string{"l_partkey", "l_suppkey"})
	j = j.Filter(expr.Gt(expr.ToFloat(j.Col("ps_availqty")),
		expr.Mul(expr.Float(0.5), j.Col("sum_qty"))))
	keys := j.Keep("ps_suppkey").Rename("k.")

	n := b.Scan("nation", "n_nationkey", "n_name")
	n = n.Filter(expr.Eq(n.Col("n_name"), expr.Str("CANADA")))
	s := b.Scan("supplier", "s_suppkey", "s_name", "s_address", "s_nationkey")
	sn := s.Join(n, plan.InnerJoin, []string{"s_nationkey"}, []string{"n_nationkey"})
	return sn.Join(keys, plan.SemiJoin, []string{"s_suppkey"}, []string{"k.ps_suppkey"}).
		Keep("s_name", "s_address").
		Sort(plan.Asc("s_name")).Node()
}

func q21(b *plan.Builder, _ float64) plan.Node {
	n := b.Scan("nation", "n_nationkey", "n_name")
	n = n.Filter(expr.Eq(n.Col("n_name"), expr.Str("SAUDI ARABIA")))
	s := b.Scan("supplier", "s_suppkey", "s_name", "s_nationkey")
	sn := s.Join(n, plan.InnerJoin, []string{"s_nationkey"}, []string{"n_nationkey"})

	l1 := b.Scan("lineitem", "l_orderkey", "l_suppkey", "l_receiptdate", "l_commitdate")
	l1 = l1.Filter(expr.Gt(l1.Col("l_receiptdate"), l1.Col("l_commitdate")))
	j := l1.Join(sn, plan.InnerJoin, []string{"l_suppkey"}, []string{"s_suppkey"})

	o := b.Scan("orders", "o_orderkey", "o_orderstatus")
	o = o.Filter(expr.Eq(o.Col("o_orderstatus"), expr.Str("F")))
	j = j.Join(o, plan.InnerJoin, []string{"l_orderkey"}, []string{"o_orderkey"})

	// EXISTS: another lineitem of the same order from a different supplier.
	l2 := b.Scan("lineitem", "l_orderkey", "l_suppkey").Rename("l2.")
	j = j.JoinExtra(l2, plan.SemiJoin, []string{"l_orderkey"}, []string{"l2.l_orderkey"},
		func(cr plan.ColResolver) expr.Expr {
			return expr.Ne(cr.Col("l2.l_suppkey"), cr.Col("l_suppkey"))
		})

	// NOT EXISTS: no other supplier of the same order was also late.
	l3 := b.Scan("lineitem", "l_orderkey", "l_suppkey", "l_receiptdate", "l_commitdate")
	l3 = l3.Filter(expr.Gt(l3.Col("l_receiptdate"), l3.Col("l_commitdate"))).
		Keep("l_orderkey", "l_suppkey").Rename("l3.")
	j = j.JoinExtra(l3, plan.AntiJoin, []string{"l_orderkey"}, []string{"l3.l_orderkey"},
		func(cr plan.ColResolver) expr.Expr {
			return expr.Ne(cr.Col("l3.l_suppkey"), cr.Col("l_suppkey"))
		})

	return j.Agg([]string{"s_name"}, plan.CountStar("numwait")).
		Sort(plan.Desc("numwait"), plan.Asc("s_name")).Limit(100).Node()
}

func q22(b *plan.Builder, _ float64) plan.Node {
	codes := []string{"13", "31", "23", "29", "30", "18", "17"}
	base := func() *plan.Rel {
		c := b.Scan("customer", "c_custkey", "c_phone", "c_acctbal")
		proj := c.Project(
			[]string{"cntrycode", "c_acctbal", "c_custkey"},
			expr.Substr(c.Col("c_phone"), 1, 2), c.Col("c_acctbal"), c.Col("c_custkey"),
		)
		return proj.Filter(expr.InStrings(proj.Col("cntrycode"), codes...))
	}
	cf := base()
	avgRel := base()
	avgRel = avgRel.Filter(expr.Gt(avgRel.Col("c_acctbal"), expr.Float(0)))
	avgBal := avgRel.Agg(nil, plan.Avg(avgRel.Col("c_acctbal"), "avg_bal"))

	j := cf.Cross(avgBal)
	j = j.Filter(expr.Gt(j.Col("c_acctbal"), j.Col("avg_bal")))
	o := b.Scan("orders", "o_custkey")
	j = j.Join(o, plan.AntiJoin, []string{"c_custkey"}, []string{"o_custkey"})
	return j.Agg([]string{"cntrycode"},
		plan.CountStar("numcust"),
		plan.Sum(j.Col("c_acctbal"), "totacctbal"),
	).Sort(plan.Asc("cntrycode")).Node()
}
