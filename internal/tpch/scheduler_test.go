package tpch

import (
	"context"
	"testing"

	"github.com/riveterdb/riveter/internal/engine"
	"github.com/riveterdb/riveter/internal/plan"
)

// TestQueriesDAGMatchesSerialSchedule is the scheduler-equivalence property
// over the whole TPC-H suite: for every query, the DAG schedule (all ready
// pipelines concurrent) must produce the same result as the compile-order
// serial schedule (MaxConcurrentPipelines=1), which reproduces the pre-DAG
// executor's behavior exactly.
func TestQueriesDAGMatchesSerialSchedule(t *testing.T) {
	cat := queryCatalog(t)
	for _, q := range All() {
		node := q.Build(plan.NewBuilder(cat), testSF)
		run := func(maxConc int) string {
			pp, err := engine.Compile(node, cat)
			if err != nil {
				t.Fatalf("%s: compile: %v", q.Name, err)
			}
			ex := engine.NewExecutor(pp, engine.Options{
				Workers:                4,
				MaxConcurrentPipelines: maxConc,
			})
			res, err := ex.Run(context.Background())
			if err != nil {
				t.Fatalf("%s (maxConc=%d): %v", q.Name, maxConc, err)
			}
			return res.SortedKey()
		}
		serial := run(1)
		if dag := run(0); dag != serial {
			t.Errorf("%s: DAG schedule result differs from serial schedule", q.Name)
		}
		if capped := run(2); capped != serial {
			t.Errorf("%s: capped (2-pipeline) schedule result differs from serial", q.Name)
		}
	}
}
