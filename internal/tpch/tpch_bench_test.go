package tpch

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"github.com/riveterdb/riveter/internal/catalog"
	"github.com/riveterdb/riveter/internal/engine"
	"github.com/riveterdb/riveter/internal/plan"
)

const benchSF = 0.02

var (
	benchCatOnce sync.Once
	benchCat     *catalog.Catalog
)

func benchCatalog(b *testing.B) *catalog.Catalog {
	b.Helper()
	benchCatOnce.Do(func() {
		cat, err := Generate(Config{SF: benchSF})
		if err != nil {
			panic(err)
		}
		benchCat = cat
	})
	return benchCat
}

// BenchmarkGenerate measures the data generator's throughput.
func BenchmarkGenerate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(Config{SF: 0.005}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTPCH runs every benchmark query end to end at SF 0.02.
func BenchmarkTPCH(b *testing.B) {
	cat := benchCatalog(b)
	for _, q := range All() {
		node := q.Build(plan.NewBuilder(cat), benchSF)
		b.Run(fmt.Sprintf("%s", q.Name), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pp, err := engine.Compile(node, cat)
				if err != nil {
					b.Fatal(err)
				}
				ex := engine.NewExecutor(pp, engine.Options{Workers: 4})
				if _, err := ex.Run(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
