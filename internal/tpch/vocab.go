// Package tpch provides a deterministic TPC-H-style data generator (all
// eight tables, spec-shaped distributions and key relationships) and the 22
// benchmark queries as logical-plan builders. It is the workload substrate
// for every experiment in the paper's evaluation.
package tpch

// Vocabulary tables. These follow the TPC-H specification's value sets; text
// columns are word salads over spec-flavoured vocabularies rather than the
// spec's exact grammar, which preserves every predicate the 22 queries
// apply (LIKE patterns, IN lists, equality filters).

var regions = []struct {
	Key  int64
	Name string
}{
	{0, "AFRICA"}, {1, "AMERICA"}, {2, "ASIA"}, {3, "EUROPE"}, {4, "MIDDLE EAST"},
}

var nations = []struct {
	Key    int64
	Name   string
	Region int64
}{
	{0, "ALGERIA", 0}, {1, "ARGENTINA", 1}, {2, "BRAZIL", 1}, {3, "CANADA", 1},
	{4, "EGYPT", 4}, {5, "ETHIOPIA", 0}, {6, "FRANCE", 3}, {7, "GERMANY", 3},
	{8, "INDIA", 2}, {9, "INDONESIA", 2}, {10, "IRAN", 4}, {11, "IRAQ", 4},
	{12, "JAPAN", 2}, {13, "JORDAN", 4}, {14, "KENYA", 0}, {15, "MOROCCO", 0},
	{16, "MOZAMBIQUE", 0}, {17, "PERU", 1}, {18, "CHINA", 2}, {19, "ROMANIA", 3},
	{20, "SAUDI ARABIA", 4}, {21, "VIETNAM", 2}, {22, "RUSSIA", 3}, {23, "UNITED KINGDOM", 3},
	{24, "UNITED STATES", 1},
}

// Part name colors (subset of the spec's P_NAME vocabulary; includes the
// words Q9 ("%green%") and Q20 ("forest%") depend on).
var colors = []string{
	"almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
	"blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse",
	"chiffon", "chocolate", "coral", "cornflower", "cream", "cyan", "dark",
	"deep", "dim", "dodger", "drab", "firebrick", "floral", "forest", "frosted",
	"gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew", "hot",
	"indian", "ivory", "khaki", "lace", "lavender", "lawn", "lemon", "light",
	"lime", "linen", "magenta", "maroon", "medium", "metallic", "midnight",
	"mint", "misty", "moccasin", "navajo", "navy", "olive", "orange", "orchid",
	"pale", "papaya", "peach", "peru", "pink", "plum", "powder", "puff",
	"purple", "red", "rose", "rosy", "royal", "saddle", "salmon", "sandy",
	"seashell", "sienna", "sky", "slate", "smoke", "snow", "spring", "steel",
	"tan", "thistle", "tomato", "turquoise", "violet", "wheat", "white", "yellow",
}

var typeSyllable1 = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
var typeSyllable2 = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
var typeSyllable3 = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}

var containerSyllable1 = []string{"SM", "LG", "MED", "JUMBO", "WRAP"}
var containerSyllable2 = []string{"CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"}

var segments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}

var priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}

var instructions = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}

// Ship modes; the spec's list has REG AIR, but query Q19 filters on
// "AIR REG" (as the official qgen templates do), so we generate that form.
var shipModes = []string{"AIR", "AIR REG", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}

// Comment filler words. "special"/"requests" make Q13's NOT LIKE predicate
// selective, and "Customer"/"Complaints" feed Q16's supplier filter.
var commentWords = []string{
	"furiously", "quickly", "carefully", "blithely", "slyly", "ironic",
	"regular", "express", "special", "pending", "final", "bold", "requests",
	"deposits", "instructions", "theodolites", "pinto", "beans", "accounts",
	"packages", "foxes", "dependencies", "platelets", "excuses", "asymptotes",
	"courts", "dolphins", "multipliers", "sauternes", "warthogs", "frets",
	"dinos", "attainments", "grouches", "sheaves", "waters", "Customer",
	"Complaints", "realms", "sentiments", "ideas",
}
