package tpch

import (
	"fmt"
	"strings"

	"github.com/riveterdb/riveter/internal/catalog"
	"github.com/riveterdb/riveter/internal/vector"
)

// Config parameterizes generation.
type Config struct {
	// SF is the scale factor. SF 1 is the full TPC-H scale (6M lineitems);
	// the experiments default to 0.01/0.05/0.1, preserving the paper's
	// 10:50:100 ratio at laptop scale.
	SF float64
	// Seed perturbs the deterministic generator; same (SF, Seed) gives a
	// bit-identical database.
	Seed int64
}

// rng is a splitmix64 PRNG: tiny, fast, deterministic across platforms.
type rng struct{ state uint64 }

func newRNG(seed int64, stream string) *rng {
	s := uint64(seed) ^ 0x9e3779b97f4a7c15
	for i := 0; i < len(stream); i++ {
		s = (s ^ uint64(stream[i])) * 0x100000001b3
	}
	return &rng{state: s}
}

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform int in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// rangeI returns a uniform int64 in [lo, hi].
func (r *rng) rangeI(lo, hi int64) int64 { return lo + int64(r.next()%uint64(hi-lo+1)) }

// rangeF returns a uniform float64 in [lo, hi).
func (r *rng) rangeF(lo, hi float64) float64 {
	return lo + (hi-lo)*(float64(r.next()>>11)/(1<<53))
}

func (r *rng) pick(words []string) string { return words[r.intn(len(words))] }

func (r *rng) comment(minWords, maxWords int) string {
	n := minWords + r.intn(maxWords-minWords+1)
	parts := make([]string, n)
	for i := range parts {
		parts[i] = r.pick(commentWords)
	}
	return strings.Join(parts, " ")
}

func (r *rng) phone(nationKey int64) string {
	return fmt.Sprintf("%02d-%03d-%03d-%04d", nationKey+10,
		r.rangeI(100, 999), r.rangeI(100, 999), r.rangeI(1000, 9999))
}

// Row counts at scale factor 1.
const (
	baseSupplier = 10000
	baseCustomer = 150000
	basePart     = 200000
	baseOrders   = 1500000
	suppsPerPart = 4
	maxLines     = 7
)

func scaled(base int, sf float64) int64 {
	n := int64(float64(base) * sf)
	if n < 1 {
		n = 1
	}
	return n
}

// Dates.
var (
	startDate   = vector.MustParseDate("1992-01-01")
	endDate     = vector.MustParseDate("1998-08-02")
	currentDate = vector.MustParseDate("1995-06-17")
)

// partRetailPrice is the spec's deterministic retail price function.
func partRetailPrice(partKey int64) float64 {
	return float64(90000+(partKey/10)%20001+100*(partKey%1000)) / 100.0
}

// Generate builds the full TPC-H database into a fresh catalog.
func Generate(cfg Config) (*catalog.Catalog, error) {
	cat := catalog.New()
	if err := genRegion(cat); err != nil {
		return nil, err
	}
	if err := genNation(cat); err != nil {
		return nil, err
	}
	if err := genSupplier(cat, cfg); err != nil {
		return nil, err
	}
	if err := genCustomer(cat, cfg); err != nil {
		return nil, err
	}
	if err := genPart(cat, cfg); err != nil {
		return nil, err
	}
	if err := genPartSupp(cat, cfg); err != nil {
		return nil, err
	}
	if err := genOrdersAndLineitem(cat, cfg); err != nil {
		return nil, err
	}
	return cat, nil
}

func genRegion(cat *catalog.Catalog) error {
	t, err := cat.Create("region", catalog.NewSchema(
		catalog.Col("r_regionkey", vector.TypeInt64),
		catalog.Col("r_name", vector.TypeString),
		catalog.Col("r_comment", vector.TypeString),
	))
	if err != nil {
		return err
	}
	r := newRNG(0, "region")
	for _, reg := range regions {
		if err := t.AppendRow(
			vector.NewInt64(reg.Key),
			vector.NewString(reg.Name),
			vector.NewString(r.comment(3, 8)),
		); err != nil {
			return err
		}
	}
	return nil
}

func genNation(cat *catalog.Catalog) error {
	t, err := cat.Create("nation", catalog.NewSchema(
		catalog.Col("n_nationkey", vector.TypeInt64),
		catalog.Col("n_name", vector.TypeString),
		catalog.Col("n_regionkey", vector.TypeInt64),
		catalog.Col("n_comment", vector.TypeString),
	))
	if err != nil {
		return err
	}
	r := newRNG(0, "nation")
	for _, n := range nations {
		if err := t.AppendRow(
			vector.NewInt64(n.Key),
			vector.NewString(n.Name),
			vector.NewInt64(n.Region),
			vector.NewString(r.comment(3, 8)),
		); err != nil {
			return err
		}
	}
	return nil
}

func genSupplier(cat *catalog.Catalog, cfg Config) error {
	t, err := cat.Create("supplier", catalog.NewSchema(
		catalog.Col("s_suppkey", vector.TypeInt64),
		catalog.Col("s_name", vector.TypeString),
		catalog.Col("s_address", vector.TypeString),
		catalog.Col("s_nationkey", vector.TypeInt64),
		catalog.Col("s_phone", vector.TypeString),
		catalog.Col("s_acctbal", vector.TypeFloat64),
		catalog.Col("s_comment", vector.TypeString),
	))
	if err != nil {
		return err
	}
	r := newRNG(cfg.Seed, "supplier")
	n := scaled(baseSupplier, cfg.SF)
	for k := int64(1); k <= n; k++ {
		nk := int64(r.intn(len(nations)))
		comment := r.comment(5, 12)
		// The spec plants "Customer ... Complaints" into ~0.05% of supplier
		// comments; Q16 anti-joins them away.
		if r.intn(2000) == 0 {
			comment = "Customer " + r.pick(commentWords) + " Complaints " + comment
		}
		if err := t.AppendRow(
			vector.NewInt64(k),
			vector.NewString(fmt.Sprintf("Supplier#%09d", k)),
			vector.NewString(r.comment(2, 4)),
			vector.NewInt64(nk),
			vector.NewString(r.phone(nk)),
			vector.NewFloat64(r.rangeF(-999.99, 9999.99)),
			vector.NewString(comment),
		); err != nil {
			return err
		}
	}
	return nil
}

func genCustomer(cat *catalog.Catalog, cfg Config) error {
	t, err := cat.Create("customer", catalog.NewSchema(
		catalog.Col("c_custkey", vector.TypeInt64),
		catalog.Col("c_name", vector.TypeString),
		catalog.Col("c_address", vector.TypeString),
		catalog.Col("c_nationkey", vector.TypeInt64),
		catalog.Col("c_phone", vector.TypeString),
		catalog.Col("c_acctbal", vector.TypeFloat64),
		catalog.Col("c_mktsegment", vector.TypeString),
		catalog.Col("c_comment", vector.TypeString),
	))
	if err != nil {
		return err
	}
	r := newRNG(cfg.Seed, "customer")
	n := scaled(baseCustomer, cfg.SF)
	for k := int64(1); k <= n; k++ {
		nk := int64(r.intn(len(nations)))
		if err := t.AppendRow(
			vector.NewInt64(k),
			vector.NewString(fmt.Sprintf("Customer#%09d", k)),
			vector.NewString(r.comment(2, 4)),
			vector.NewInt64(nk),
			vector.NewString(r.phone(nk)),
			vector.NewFloat64(r.rangeF(-999.99, 9999.99)),
			vector.NewString(r.pick(segments)),
			vector.NewString(r.comment(6, 16)),
		); err != nil {
			return err
		}
	}
	return nil
}

func genPart(cat *catalog.Catalog, cfg Config) error {
	t, err := cat.Create("part", catalog.NewSchema(
		catalog.Col("p_partkey", vector.TypeInt64),
		catalog.Col("p_name", vector.TypeString),
		catalog.Col("p_mfgr", vector.TypeString),
		catalog.Col("p_brand", vector.TypeString),
		catalog.Col("p_type", vector.TypeString),
		catalog.Col("p_size", vector.TypeInt64),
		catalog.Col("p_container", vector.TypeString),
		catalog.Col("p_retailprice", vector.TypeFloat64),
		catalog.Col("p_comment", vector.TypeString),
	))
	if err != nil {
		return err
	}
	r := newRNG(cfg.Seed, "part")
	n := scaled(basePart, cfg.SF)
	for k := int64(1); k <= n; k++ {
		words := make([]string, 5)
		for i := range words {
			words[i] = r.pick(colors)
		}
		m := r.intn(5) + 1
		if err := t.AppendRow(
			vector.NewInt64(k),
			vector.NewString(strings.Join(words, " ")),
			vector.NewString(fmt.Sprintf("Manufacturer#%d", m)),
			vector.NewString(fmt.Sprintf("Brand#%d%d", m, r.intn(5)+1)),
			vector.NewString(r.pick(typeSyllable1)+" "+r.pick(typeSyllable2)+" "+r.pick(typeSyllable3)),
			vector.NewInt64(r.rangeI(1, 50)),
			vector.NewString(r.pick(containerSyllable1)+" "+r.pick(containerSyllable2)),
			vector.NewFloat64(partRetailPrice(k)),
			vector.NewString(r.comment(2, 6)),
		); err != nil {
			return err
		}
	}
	return nil
}

func genPartSupp(cat *catalog.Catalog, cfg Config) error {
	t, err := cat.Create("partsupp", catalog.NewSchema(
		catalog.Col("ps_partkey", vector.TypeInt64),
		catalog.Col("ps_suppkey", vector.TypeInt64),
		catalog.Col("ps_availqty", vector.TypeInt64),
		catalog.Col("ps_supplycost", vector.TypeFloat64),
		catalog.Col("ps_comment", vector.TypeString),
	))
	if err != nil {
		return err
	}
	r := newRNG(cfg.Seed, "partsupp")
	nParts := scaled(basePart, cfg.SF)
	nSupp := scaled(baseSupplier, cfg.SF)
	for pk := int64(1); pk <= nParts; pk++ {
		for s := int64(0); s < suppsPerPart; s++ {
			// The spec's supplier spreading function: distinct suppliers per part.
			sk := (pk+s*(nSupp/suppsPerPart+(pk-1)/nSupp))%nSupp + 1
			if err := t.AppendRow(
				vector.NewInt64(pk),
				vector.NewInt64(sk),
				vector.NewInt64(r.rangeI(1, 9999)),
				vector.NewFloat64(r.rangeF(1, 1000)),
				vector.NewString(r.comment(4, 10)),
			); err != nil {
				return err
			}
		}
	}
	return nil
}

func genOrdersAndLineitem(cat *catalog.Catalog, cfg Config) error {
	orders, err := cat.Create("orders", catalog.NewSchema(
		catalog.Col("o_orderkey", vector.TypeInt64),
		catalog.Col("o_custkey", vector.TypeInt64),
		catalog.Col("o_orderstatus", vector.TypeString),
		catalog.Col("o_totalprice", vector.TypeFloat64),
		catalog.Col("o_orderdate", vector.TypeDate),
		catalog.Col("o_orderpriority", vector.TypeString),
		catalog.Col("o_clerk", vector.TypeString),
		catalog.Col("o_shippriority", vector.TypeInt64),
		catalog.Col("o_comment", vector.TypeString),
	))
	if err != nil {
		return err
	}
	lineitem, err := cat.Create("lineitem", catalog.NewSchema(
		catalog.Col("l_orderkey", vector.TypeInt64),
		catalog.Col("l_partkey", vector.TypeInt64),
		catalog.Col("l_suppkey", vector.TypeInt64),
		catalog.Col("l_linenumber", vector.TypeInt64),
		catalog.Col("l_quantity", vector.TypeFloat64),
		catalog.Col("l_extendedprice", vector.TypeFloat64),
		catalog.Col("l_discount", vector.TypeFloat64),
		catalog.Col("l_tax", vector.TypeFloat64),
		catalog.Col("l_returnflag", vector.TypeString),
		catalog.Col("l_linestatus", vector.TypeString),
		catalog.Col("l_shipdate", vector.TypeDate),
		catalog.Col("l_commitdate", vector.TypeDate),
		catalog.Col("l_receiptdate", vector.TypeDate),
		catalog.Col("l_shipinstruct", vector.TypeString),
		catalog.Col("l_shipmode", vector.TypeString),
		catalog.Col("l_comment", vector.TypeString),
	))
	if err != nil {
		return err
	}

	r := newRNG(cfg.Seed, "orders")
	nOrders := scaled(baseOrders, cfg.SF)
	nCust := scaled(baseCustomer, cfg.SF)
	nParts := scaled(basePart, cfg.SF)
	nSupp := scaled(baseSupplier, cfg.SF)

	for ok := int64(1); ok <= nOrders; ok++ {
		// Spec: only customers with custkey%3 != 0 place orders (Q22 depends
		// on the existence of order-less customers).
		ck := r.rangeI(1, nCust)
		for ck%3 == 0 {
			ck = r.rangeI(1, nCust)
		}
		odate := startDate + r.rangeI(0, endDate-startDate-121)
		nLines := 1 + r.intn(maxLines)
		var totalPrice float64
		allF, allO := true, true
		for ln := 1; ln <= nLines; ln++ {
			pk := r.rangeI(1, nParts)
			sk := r.rangeI(1, nSupp)
			qty := float64(r.rangeI(1, 50))
			extPrice := qty * partRetailPrice(pk)
			disc := float64(r.intn(11)) / 100.0
			tax := float64(r.intn(9)) / 100.0
			shipDate := odate + r.rangeI(1, 121)
			commitDate := odate + r.rangeI(30, 90)
			receiptDate := shipDate + r.rangeI(1, 30)

			var returnFlag string
			if receiptDate <= currentDate {
				if r.intn(2) == 0 {
					returnFlag = "R"
				} else {
					returnFlag = "A"
				}
			} else {
				returnFlag = "N"
			}
			var lineStatus string
			if shipDate > currentDate {
				lineStatus = "O"
				allF = false
			} else {
				lineStatus = "F"
				allO = false
			}
			totalPrice += extPrice * (1 + tax) * (1 - disc)

			if err := lineitem.AppendRow(
				vector.NewInt64(ok),
				vector.NewInt64(pk),
				vector.NewInt64(sk),
				vector.NewInt64(int64(ln)),
				vector.NewFloat64(qty),
				vector.NewFloat64(extPrice),
				vector.NewFloat64(disc),
				vector.NewFloat64(tax),
				vector.NewString(returnFlag),
				vector.NewString(lineStatus),
				vector.NewDate(shipDate),
				vector.NewDate(commitDate),
				vector.NewDate(receiptDate),
				vector.NewString(r.pick(instructions)),
				vector.NewString(r.pick(shipModes)),
				vector.NewString(r.comment(2, 6)),
			); err != nil {
				return err
			}
		}
		status := "P"
		if allF {
			status = "F"
		} else if allO {
			status = "O"
		}
		if err := orders.AppendRow(
			vector.NewInt64(ok),
			vector.NewInt64(ck),
			vector.NewString(status),
			vector.NewFloat64(totalPrice),
			vector.NewDate(odate),
			vector.NewString(r.pick(priorities)),
			vector.NewString(fmt.Sprintf("Clerk#%09d", r.rangeI(1, scaled(1000, cfg.SF)))),
			vector.NewInt64(0),
			vector.NewString(r.comment(5, 12)),
		); err != nil {
			return err
		}
	}
	return nil
}
