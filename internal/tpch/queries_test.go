package tpch

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"

	"github.com/riveterdb/riveter/internal/catalog"
	"github.com/riveterdb/riveter/internal/engine"
	"github.com/riveterdb/riveter/internal/plan"
	"github.com/riveterdb/riveter/internal/vector"
)

const testSF = 0.01

var (
	testCatOnce sync.Once
	testCat     *catalog.Catalog
)

func queryCatalog(t testing.TB) *catalog.Catalog {
	t.Helper()
	testCatOnce.Do(func() {
		cat, err := Generate(Config{SF: testSF})
		if err != nil {
			t.Fatalf("generate: %v", err)
		}
		testCat = cat
	})
	return testCat
}

func runQuery(t testing.TB, cat *catalog.Catalog, q Query, workers int) *engine.ResultSet {
	t.Helper()
	node := q.Build(plan.NewBuilder(cat), testSF)
	pp, err := engine.Compile(node, cat)
	if err != nil {
		t.Fatalf("%s: compile: %v", q.Name, err)
	}
	ex := engine.NewExecutor(pp, engine.Options{Workers: workers})
	res, err := ex.Run(context.Background())
	if err != nil {
		t.Fatalf("%s: run: %v", q.Name, err)
	}
	return res
}

func TestAllQueriesRun(t *testing.T) {
	cat := queryCatalog(t)
	// Queries that may legitimately return zero rows at tiny scale.
	mayBeEmpty := map[int]bool{2: true, 15: true, 16: true, 18: true, 20: true, 21: true}
	for _, q := range All() {
		res := runQuery(t, cat, q, 2)
		if res.NumRows() == 0 && !mayBeEmpty[q.ID] {
			t.Errorf("%s returned no rows", q.Name)
		}
		if res.Schema.Arity() == 0 {
			t.Errorf("%s has empty schema", q.Name)
		}
	}
}

func TestQueriesWorkerInvariance(t *testing.T) {
	cat := queryCatalog(t)
	for _, q := range All() {
		ref := runQuery(t, cat, q, 1).SortedKey()
		got := runQuery(t, cat, q, 4).SortedKey()
		if got != ref {
			t.Errorf("%s: 4-worker result differs from single-worker", q.Name)
		}
	}
}

func TestQ1Semantics(t *testing.T) {
	cat := queryCatalog(t)
	res := runQuery(t, cat, mustGet(t, 1), 2)
	// Exactly the 4 (returnflag, linestatus) combos: (A,F),(N,F),(N,O),(R,F).
	if res.NumRows() != 4 {
		t.Fatalf("Q1 rows = %d, want 4", res.NumRows())
	}
	var want [][2]string
	for i := int64(0); i < res.NumRows(); i++ {
		row := res.Row(i)
		want = append(want, [2]string{row[0].S, row[1].S})
		// count_order > 0 and avg consistency: sum_qty/count == avg_qty.
		count := float64(row[9].I)
		if count <= 0 {
			t.Fatalf("Q1 group %v has zero count", want[i])
		}
		if diff := row[2].F/count - row[6].F; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("Q1 avg_qty inconsistent for group %v", want[i])
		}
	}
	expect := [][2]string{{"A", "F"}, {"N", "F"}, {"N", "O"}, {"R", "F"}}
	for i := range expect {
		if want[i] != expect[i] {
			t.Errorf("Q1 group order: got %v want %v", want, expect)
			break
		}
	}
}

func mustGet(t testing.TB, id int) Query {
	t.Helper()
	q, err := Get(id)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestQ1MatchesHandComputation(t *testing.T) {
	cat := queryCatalog(t)
	li, _ := cat.Table("lineitem")
	cutoff := vector.MustParseDate("1998-09-02")
	type agg struct {
		qty, price, disc float64
		n                int64
	}
	groups := map[[2]string]*agg{}
	s := li.Schema()
	rf, ls := s.IndexOf("l_returnflag"), s.IndexOf("l_linestatus")
	qy, ep, dc, sd := s.IndexOf("l_quantity"), s.IndexOf("l_extendedprice"), s.IndexOf("l_discount"), s.IndexOf("l_shipdate")
	for r := int64(0); r < li.NumRows(); r++ {
		if li.Value(r, sd).I > cutoff {
			continue
		}
		key := [2]string{li.Value(r, rf).S, li.Value(r, ls).S}
		g := groups[key]
		if g == nil {
			g = &agg{}
			groups[key] = g
		}
		g.qty += li.Value(r, qy).F
		g.price += li.Value(r, ep).F
		g.disc += li.Value(r, dc).F
		g.n++
	}
	res := runQuery(t, cat, mustGet(t, 1), 3)
	for i := int64(0); i < res.NumRows(); i++ {
		row := res.Row(i)
		key := [2]string{row[0].S, row[1].S}
		g := groups[key]
		if g == nil {
			t.Fatalf("unexpected group %v", key)
		}
		if row[9].I != g.n {
			t.Errorf("%v count = %d, want %d", key, row[9].I, g.n)
		}
		if !close(row[2].F, g.qty) || !close(row[3].F, g.price) {
			t.Errorf("%v sums mismatch", key)
		}
	}
}

func close(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := b
	if scale < 0 {
		scale = -scale
	}
	return d <= 1e-6*(scale+1)
}

func TestQ6MatchesHandComputation(t *testing.T) {
	cat := queryCatalog(t)
	li, _ := cat.Table("lineitem")
	s := li.Schema()
	qy, ep, dc, sd := s.IndexOf("l_quantity"), s.IndexOf("l_extendedprice"), s.IndexOf("l_discount"), s.IndexOf("l_shipdate")
	lo, hi := vector.MustParseDate("1994-01-01"), vector.MustParseDate("1995-01-01")
	var want float64
	for r := int64(0); r < li.NumRows(); r++ {
		d := li.Value(r, sd).I
		disc := li.Value(r, dc).F
		if d >= lo && d < hi && disc >= 0.05 && disc <= 0.07 && li.Value(r, qy).F < 24 {
			want += li.Value(r, ep).F * disc
		}
	}
	res := runQuery(t, cat, mustGet(t, 6), 2)
	if res.NumRows() != 1 {
		t.Fatalf("Q6 rows = %d", res.NumRows())
	}
	if got := res.Row(0)[0].F; !close(got, want) {
		t.Errorf("Q6 revenue = %v, want %v", got, want)
	}
}

func TestQ4PrioritiesSorted(t *testing.T) {
	cat := queryCatalog(t)
	res := runQuery(t, cat, mustGet(t, 4), 2)
	if res.NumRows() == 0 || res.NumRows() > 5 {
		t.Fatalf("Q4 rows = %d", res.NumRows())
	}
	for i := int64(1); i < res.NumRows(); i++ {
		if res.Row(i - 1)[0].S >= res.Row(i)[0].S {
			t.Error("Q4 not sorted by priority")
		}
	}
}

func TestQ13IncludesZeroOrderCustomers(t *testing.T) {
	cat := queryCatalog(t)
	res := runQuery(t, cat, mustGet(t, 13), 2)
	foundZero := false
	var totalCust int64
	for i := int64(0); i < res.NumRows(); i++ {
		row := res.Row(i)
		totalCust += row[1].I
		if row[0].I == 0 {
			foundZero = true
		}
	}
	if !foundZero {
		t.Error("Q13 must have a zero-orders bucket (custkey%3==0 customers)")
	}
	cust, _ := cat.Table("customer")
	if totalCust != cust.NumRows() {
		t.Errorf("Q13 buckets cover %d customers, want %d", totalCust, cust.NumRows())
	}
}

func TestQ14BetweenZeroAndHundred(t *testing.T) {
	cat := queryCatalog(t)
	res := runQuery(t, cat, mustGet(t, 14), 2)
	if res.NumRows() != 1 {
		t.Fatalf("Q14 rows = %d", res.NumRows())
	}
	v := res.Row(0)[0].F
	if v < 0 || v > 100 {
		t.Errorf("Q14 promo_revenue = %v, want a percentage", v)
	}
}

func TestQ22CodesSubset(t *testing.T) {
	cat := queryCatalog(t)
	res := runQuery(t, cat, mustGet(t, 22), 2)
	codes := map[string]bool{"13": true, "31": true, "23": true, "29": true, "30": true, "18": true, "17": true}
	for i := int64(0); i < res.NumRows(); i++ {
		row := res.Row(i)
		if !codes[row[0].S] {
			t.Errorf("Q22 unexpected country code %q", row[0].S)
		}
		if row[1].I <= 0 {
			t.Errorf("Q22 numcust = %v", row[1])
		}
	}
}

func TestEveryQuerySuspendsAndResumesPipelineLevel(t *testing.T) {
	cat := queryCatalog(t)
	for _, q := range All() {
		node := q.Build(plan.NewBuilder(cat), testSF)
		ref := func() string {
			pp, err := engine.Compile(node, cat)
			if err != nil {
				t.Fatal(err)
			}
			ex := engine.NewExecutor(pp, engine.Options{Workers: 2})
			res, err := ex.Run(context.Background())
			if err != nil {
				t.Fatalf("%s: %v", q.Name, err)
			}
			return res.SortedKey()
		}()

		// Suspend at the middle breaker, resume, compare.
		pp1, err := engine.Compile(node, cat)
		if err != nil {
			t.Fatal(err)
		}
		mid := pp1.NumPipelines() / 2
		if mid >= pp1.NumPipelines()-1 {
			mid = pp1.NumPipelines() - 2
		}
		if mid < 0 {
			continue // single-pipeline plan: nothing to suspend at
		}
		ex1 := engine.NewExecutor(pp1, engine.Options{
			Workers: 2,
			OnBreaker: func(ev *engine.BreakerEvent) engine.BreakerAction {
				if ev.PipelineIdx == mid {
					return engine.ActionSuspend
				}
				return engine.ActionContinue
			},
		})
		_, err = ex1.Run(context.Background())
		if !errors.Is(err, engine.ErrSuspended) {
			t.Fatalf("%s: expected suspension at breaker %d, got %v", q.Name, mid, err)
		}
		var buf bytes.Buffer
		if err := ex1.SaveState(vector.NewEncoder(&buf)); err != nil {
			t.Fatalf("%s: save: %v", q.Name, err)
		}

		pp2, err := engine.Compile(node, cat)
		if err != nil {
			t.Fatal(err)
		}
		ex2 := engine.NewExecutor(pp2, engine.Options{Workers: 3})
		if err := ex2.LoadState(vector.NewDecoder(bytes.NewReader(buf.Bytes()))); err != nil {
			t.Fatalf("%s: load: %v", q.Name, err)
		}
		res, err := ex2.Run(context.Background())
		if err != nil {
			t.Fatalf("%s: resume: %v", q.Name, err)
		}
		if got := res.SortedKey(); got != ref {
			t.Errorf("%s: resumed result differs from straight run", q.Name)
		}
	}
}

func TestEveryQuerySuspendsAndResumesProcessLevel(t *testing.T) {
	cat := queryCatalog(t)
	for _, q := range All() {
		node := q.Build(plan.NewBuilder(cat), testSF)
		pp0, err := engine.Compile(node, cat)
		if err != nil {
			t.Fatal(err)
		}
		ex0 := engine.NewExecutor(pp0, engine.Options{Workers: 2})
		resRef, err := ex0.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		ref := resRef.SortedKey()

		pp1, _ := engine.Compile(node, cat)
		ex1 := engine.NewExecutor(pp1, engine.Options{Workers: 2})
		ex1.RequestSuspend(engine.KindProcess)
		_, err = ex1.Run(context.Background())
		if !errors.Is(err, engine.ErrSuspended) {
			t.Fatalf("%s: expected process suspension, got %v", q.Name, err)
		}
		var buf bytes.Buffer
		if err := ex1.SaveState(vector.NewEncoder(&buf)); err != nil {
			t.Fatalf("%s: save: %v", q.Name, err)
		}
		pp2, _ := engine.Compile(node, cat)
		ex2 := engine.NewExecutor(pp2, engine.Options{Workers: 2})
		if err := ex2.LoadState(vector.NewDecoder(bytes.NewReader(buf.Bytes()))); err != nil {
			t.Fatalf("%s: load: %v", q.Name, err)
		}
		res, err := ex2.Run(context.Background())
		if err != nil {
			t.Fatalf("%s: resume: %v", q.Name, err)
		}
		if got := res.SortedKey(); got != ref {
			t.Errorf("%s: process-resumed result differs", q.Name)
		}
	}
}

func TestGetErrors(t *testing.T) {
	if _, err := Get(0); err == nil {
		t.Error("Get(0) must fail")
	}
	if _, err := Get(23); err == nil {
		t.Error("Get(23) must fail")
	}
	q, err := Get(17)
	if err != nil || q.Name != "Q17" {
		t.Errorf("Get(17) = %v, %v", q, err)
	}
	if len(All()) != 22 {
		t.Error("All() must return 22 queries")
	}
}

func TestQueryPlansFingerprintStable(t *testing.T) {
	cat := queryCatalog(t)
	for _, q := range All() {
		n1 := q.Build(plan.NewBuilder(cat), testSF)
		n2 := q.Build(plan.NewBuilder(cat), testSF)
		if plan.Fingerprint(n1) != plan.Fingerprint(n2) {
			t.Errorf("%s: rebuilt plan has a different fingerprint", q.Name)
		}
	}
}
