package riveter

import (
	"context"
	"errors"
	"os"
	"strings"
	"testing"
	"time"

	"github.com/riveterdb/riveter/internal/checkpoint"
	"github.com/riveterdb/riveter/internal/faultfs"
)

// openTPCHFS is openTPCH with an injector wrapped around checkpoint I/O.
func openTPCHFS(t testing.TB, sf float64) (*DB, *faultfs.Injector) {
	t.Helper()
	inj := faultfs.New(nil)
	db := Open(WithWorkers(2), WithCheckpointDir(t.TempDir()), WithFS(inj))
	if err := db.GenerateTPCH(sf); err != nil {
		t.Fatal(err)
	}
	return db, inj
}

// suspendedExec starts q and suspends it at the given level, skipping the
// test if the query finished first.
func suspendedExec(t *testing.T, q *Query, level Strategy) *Execution {
	t.Helper()
	exec, err := q.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := exec.Suspend(level); err != nil {
		t.Fatal(err)
	}
	err = exec.Wait()
	if err == nil {
		t.Skip("timing: query finished before the suspension landed")
	}
	if !errors.Is(err, ErrSuspended) {
		t.Fatalf("Wait = %v", err)
	}
	return exec
}

// TestCrashMatrixEndToEnd is the crash matrix over a real engine state: a
// suspended TPC-H query is checkpointed under crash points spread across
// the image. After each simulated crash, the final path either holds a
// complete image — which verifies and resumes to a byte-identical result —
// or holds nothing and the failure is reported cleanly. Orphaned .tmp
// files are swept like a restarting server would.
func TestCrashMatrixEndToEnd(t *testing.T) {
	db, inj := openTPCHFS(t, 0.02)
	q, err := db.PrepareTPCH(3)
	if err != nil {
		t.Fatal(err)
	}
	want, err := q.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	exec := suspendedExec(t, q, PipelineLevel)

	// One clean checkpoint to learn the image size (and prove the state is
	// re-serializable: every crash round below checkpoints the same
	// suspended executor again).
	cleanPath := db.NewCheckpointPath("clean")
	if _, err := exec.Checkpoint(cleanPath); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(cleanPath)
	if err != nil {
		t.Fatal(err)
	}
	size := st.Size()

	dir := db.CheckpointDir()
	for _, frac := range []float64{0, 0.1, 0.3, 0.5, 0.7, 0.9, 0.999} {
		crashAt := int64(frac * float64(size))
		inj.Reset()
		inj.CrashAfterBytes(crashAt)
		path := db.NewCheckpointPath("crash")
		_, cerr := exec.Checkpoint(path)
		inj.Reset() // the "restarted process" sees a healthy disk again

		if _, statErr := os.Stat(path); statErr == nil {
			if _, verr := VerifyCheckpoint(path); verr != nil {
				t.Fatalf("crash@%d: published checkpoint fails verify: %v", crashAt, verr)
			}
			res, rerr := q.Resume(context.Background(), path)
			if rerr != nil {
				t.Fatalf("crash@%d: resume: %v", crashAt, rerr)
			}
			if res.SortedKey() != want.SortedKey() {
				t.Fatalf("crash@%d: resumed result differs from clean run", crashAt)
			}
		} else {
			if cerr == nil {
				t.Fatalf("crash@%d: Checkpoint claimed success but published nothing", crashAt)
			}
			if _, verr := VerifyCheckpoint(path); verr == nil {
				t.Fatalf("crash@%d: verify passed on a missing checkpoint", crashAt)
			}
		}
		// The fresh process sweeps whatever the crash left in flight.
		removed, failed, serr := checkpoint.SweepTemp(faultfs.OS, dir)
		if serr != nil {
			t.Fatalf("crash@%d: sweep: %v", crashAt, serr)
		}
		if len(failed) != 0 {
			t.Fatalf("crash@%d: sweep failures: %v", crashAt, failed)
		}
		for _, p := range removed {
			if !strings.HasSuffix(p, checkpoint.TempSuffix) {
				t.Fatalf("crash@%d: sweep removed non-temp %s", crashAt, p)
			}
		}
	}

	// The clean checkpoint still resumes byte-identically after all rounds.
	res, err := q.Resume(context.Background(), cleanPath)
	if err != nil {
		t.Fatal(err)
	}
	if res.SortedKey() != want.SortedKey() {
		t.Error("clean-checkpoint resume differs from uninterrupted run")
	}
}

// TestCheckpointWithRetryPublicAPI: the public retry entry point absorbs
// transient faults and the checkpoint resumes correctly.
func TestCheckpointWithRetryPublicAPI(t *testing.T) {
	db, inj := openTPCHFS(t, 0.02)
	q, err := db.PrepareTPCH(3)
	if err != nil {
		t.Fatal(err)
	}
	want, err := q.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	exec := suspendedExec(t, q, PipelineLevel)

	inj.AddFault(faultfs.Fault{Op: faultfs.OpWrite, PathSubstr: ".rvck", Nth: 1, Count: 2})
	path := db.NewCheckpointPath("retry")
	info, err := exec.CheckpointWithRetry(context.Background(), path,
		RetryPolicy{Attempts: 5, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if info.Kind != "pipeline" {
		t.Errorf("kind = %s", info.Kind)
	}
	if got := db.Metrics().Snapshot().Counters["checkpoint.retry"]; got != 2 {
		t.Errorf("checkpoint.retry = %d, want 2", got)
	}
	res, err := q.Resume(context.Background(), path)
	if err != nil {
		t.Fatal(err)
	}
	if res.SortedKey() != want.SortedKey() {
		t.Error("retried checkpoint resumed to a different result")
	}
}

// TestCheckpointDegradedPublicAPI: a process-level suspension persisted
// degraded carries no padding, records kind "pipeline", and still resumes
// to an identical result.
func TestCheckpointDegradedPublicAPI(t *testing.T) {
	db, _ := openTPCHFS(t, 0.02)
	q, err := db.PrepareTPCH(1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := q.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	exec := suspendedExec(t, q, ProcessLevel)

	full := db.NewCheckpointPath("full")
	fullInfo, err := exec.Checkpoint(full)
	if err != nil {
		t.Fatal(err)
	}
	if fullInfo.Kind != "process" || fullInfo.TotalBytes <= fullInfo.StateBytes {
		t.Fatalf("full checkpoint: %+v", fullInfo)
	}
	degraded := db.NewCheckpointPath("degraded")
	degInfo, err := exec.CheckpointDegraded(context.Background(), degraded, RetryPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if degInfo.Kind != "pipeline" || degInfo.TotalBytes != degInfo.StateBytes {
		t.Fatalf("degraded checkpoint: %+v", degInfo)
	}
	if degInfo.TotalBytes >= fullInfo.TotalBytes {
		t.Errorf("degraded image (%d bytes) not smaller than full image (%d bytes)",
			degInfo.TotalBytes, fullInfo.TotalBytes)
	}
	res, err := q.Resume(context.Background(), degraded)
	if err != nil {
		t.Fatal(err)
	}
	if res.SortedKey() != want.SortedKey() {
		t.Error("degraded checkpoint resumed to a different result")
	}
}

// TestResumeInPlacePublicAPI: with checkpoints impossible, a suspended
// execution relaunches from memory and completes with the correct result.
func TestResumeInPlacePublicAPI(t *testing.T) {
	db, inj := openTPCHFS(t, 0.02)
	q, err := db.PrepareTPCH(3)
	if err != nil {
		t.Fatal(err)
	}
	want, err := q.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	exec := suspendedExec(t, q, PipelineLevel)

	// The disk is gone entirely.
	inj.AddFault(faultfs.Fault{Op: faultfs.OpCreate})
	if _, err := exec.Checkpoint(db.NewCheckpointPath("doomed")); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("checkpoint on dead disk: %v", err)
	}
	fresh, err := exec.ResumeInPlace(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Wait(); err != nil {
		t.Fatal(err)
	}
	res, err := fresh.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.SortedKey() != want.SortedKey() {
		t.Error("resume-in-place result differs from clean run")
	}
	// Nothing landed on disk.
	entries, _ := os.ReadDir(db.CheckpointDir())
	for _, e := range entries {
		if strings.Contains(e.Name(), "doomed") && !strings.HasSuffix(e.Name(), checkpoint.TempSuffix) {
			t.Errorf("dead disk grew a checkpoint: %s", e.Name())
		}
	}
}
