module github.com/riveterdb/riveter

go 1.22
