package riveter

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"
)

// TestNewCheckpointPathUnique allocates paths from many goroutines and
// verifies they never collide (the serving layer checkpoints concurrent
// sessions into one directory).
func TestNewCheckpointPathUnique(t *testing.T) {
	db := Open(WithCheckpointDir(t.TempDir()))
	const n = 64
	paths := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			paths[i] = db.NewCheckpointPath("sess/../weird name")
		}(i)
	}
	wg.Wait()
	seen := map[string]bool{}
	for _, p := range paths {
		if seen[p] {
			t.Fatalf("duplicate checkpoint path %s", p)
		}
		seen[p] = true
		if dir := db.CheckpointDir(); len(p) <= len(dir) || p[:len(dir)] != dir {
			t.Fatalf("path %s escapes checkpoint dir %s", p, dir)
		}
	}
}

func TestQueryEstimate(t *testing.T) {
	db := openTPCH(t, 0.005)
	q, err := db.PrepareTPCH(21)
	if err != nil {
		t.Fatal(err)
	}
	est := q.Estimate()
	if est.InputBytes <= 0 || est.InputRows <= 0 || est.Rows <= 0 || est.Latency <= 0 {
		t.Errorf("estimate has empty fields: %+v", est)
	}
	if est.StateBytes <= 0 {
		t.Errorf("join query must price intermediate state: %+v", est)
	}
	short, err := db.Prepare("SELECT count(*) FROM region")
	if err != nil {
		t.Fatal(err)
	}
	if s := short.Estimate(); s.InputBytes >= est.InputBytes {
		t.Errorf("tiny scan (%d input bytes) must undercut Q21 (%d)", s.InputBytes, est.InputBytes)
	}
}

// TestConcurrentSuspendResumeStress drives many concurrent
// Start/Suspend/Checkpoint/Resume cycles against one DB; run under -race
// this is the shared-state audit of the serving layer's access pattern.
func TestConcurrentSuspendResumeStress(t *testing.T) {
	db := openTPCH(t, 0.01)
	ctx := context.Background()
	qids := []int{1, 3, 6}
	want := map[int]string{}
	for _, id := range qids {
		q, err := db.PrepareTPCH(id)
		if err != nil {
			t.Fatal(err)
		}
		res, err := q.Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		want[id] = res.SortedKey()
	}

	const workers = 6
	const iters = 3
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := qids[w%len(qids)]
			q, err := db.PrepareTPCH(id)
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			for it := 0; it < iters; it++ {
				exec, err := q.Start(ctx)
				if err != nil {
					t.Errorf("worker %d: start: %v", w, err)
					return
				}
				if err := exec.Suspend(PipelineLevel); err != nil {
					t.Errorf("worker %d: suspend: %v", w, err)
					return
				}
				werr := exec.Wait()
				var key string
				switch {
				case werr == nil:
					res, err := exec.Result()
					if err != nil {
						t.Errorf("worker %d: result: %v", w, err)
						return
					}
					key = res.SortedKey()
				case errors.Is(werr, ErrSuspended):
					path := db.NewCheckpointPath(fmt.Sprintf("stress-%d-%d", w, it))
					if _, err := exec.Checkpoint(path); err != nil {
						t.Errorf("worker %d: checkpoint: %v", w, err)
						return
					}
					res, err := q.Resume(ctx, path)
					if err != nil {
						t.Errorf("worker %d: resume: %v", w, err)
						return
					}
					key = res.SortedKey()
					os.Remove(path)
				default:
					t.Errorf("worker %d: wait: %v", w, werr)
					return
				}
				if key != want[id] {
					t.Errorf("worker %d iter %d: Q%d result diverged", w, it, id)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestStartFromCheckpoint checks the re-suspendable resume path end to
// end: suspend, checkpoint, StartFromCheckpoint, suspend the continuation
// again, checkpoint, and finish from the second checkpoint.
func TestStartFromCheckpoint(t *testing.T) {
	db := openTPCH(t, 0.02)
	q, err := db.PrepareTPCH(21)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	want, err := q.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}

	exec, err := q.Start(ctx)
	if err != nil {
		t.Fatal(err)
	}
	_ = exec.Suspend(PipelineLevel)
	if err := exec.Wait(); !errors.Is(err, ErrSuspended) {
		t.Skipf("first suspension did not land: %v", err)
	}
	ck1 := db.NewCheckpointPath("sfc")
	if _, err := exec.Checkpoint(ck1); err != nil {
		t.Fatal(err)
	}

	cont, err := q.StartFromCheckpoint(ctx, ck1)
	if err != nil {
		t.Fatal(err)
	}
	_ = cont.Suspend(PipelineLevel)
	werr := cont.Wait()
	switch {
	case werr == nil:
		res, err := cont.Result()
		if err != nil {
			t.Fatal(err)
		}
		if res.SortedKey() != want.SortedKey() {
			t.Error("continued result differs")
		}
	case errors.Is(werr, ErrSuspended):
		ck2 := db.NewCheckpointPath("sfc")
		if _, err := cont.Checkpoint(ck2); err != nil {
			t.Fatal(err)
		}
		res, err := q.Resume(ctx, ck2)
		if err != nil {
			t.Fatal(err)
		}
		if res.SortedKey() != want.SortedKey() {
			t.Error("twice-suspended result differs from clean run")
		}
	default:
		t.Fatal(werr)
	}
}
