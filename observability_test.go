package riveter

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"github.com/riveterdb/riveter/internal/obs"
)

// TestTraceSuspendResumeRoundTrip verifies event ordering across a full
// suspend→checkpoint→resume round trip through the public API: the trace
// started by Query.Start continues through Execution.Checkpoint and
// Execution.Resume, so request, acknowledgement, persist, restore, and the
// resumed pipelines appear in causal order in one event stream.
func TestTraceSuspendResumeRoundTrip(t *testing.T) {
	db := Open(WithWorkers(2), WithCheckpointDir(t.TempDir()), WithTracing())
	if err := db.GenerateTPCH(0.02); err != nil {
		t.Fatal(err)
	}
	q, err := db.PrepareTPCH(3)
	if err != nil {
		t.Fatal(err)
	}

	exec, err := q.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := exec.Suspend(PipelineLevel); err != nil {
		t.Fatal(err)
	}
	err = exec.Wait()
	if err == nil {
		t.Skip("query finished before the suspension landed")
	}
	if !errors.Is(err, ErrSuspended) {
		t.Fatalf("Wait = %v", err)
	}
	path := filepath.Join(db.CheckpointDir(), "q3.rvck")
	info, err := exec.Checkpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exec.Resume(context.Background(), path); err != nil {
		t.Fatal(err)
	}

	tr := exec.Trace()
	if tr == nil {
		t.Fatal("WithTracing must attach a trace to the execution")
	}

	// The causal chain must appear in order.
	order := []string{
		obs.EvSuspendRequested,
		obs.EvSuspendAcked,
		obs.EvCheckpointSerialize,
		obs.EvCheckpointWrite,
		obs.EvCheckpointPersisted,
		obs.EvResumeRestore,
	}
	lastSeq := -1
	for _, name := range order {
		ev, ok := tr.Find(name)
		if !ok {
			t.Fatalf("trace missing %s event; trace has %d events", name, tr.Len())
		}
		if ev.Seq <= lastSeq {
			t.Fatalf("%s (seq %d) out of order (previous seq %d)", name, ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
	}

	// Checkpoint events carry the persisted sizes the report exposes.
	persisted, _ := tr.Find(obs.EvCheckpointPersisted)
	if got := persisted.Attr("total_bytes"); got != info.TotalBytes {
		t.Fatalf("checkpoint.persisted total_bytes = %v, checkpoint info says %d", got, info.TotalBytes)
	}
	if persisted.Attr("duration") == nil {
		t.Fatal("checkpoint.persisted missing duration (L_s)")
	}
	restore, _ := tr.Find(obs.EvResumeRestore)
	if restore.Attr("duration") == nil {
		t.Fatal("resume.restore missing duration (L_r)")
	}

	// Pipelines finished both before the suspension and after the resume.
	finishes := tr.FindAll(obs.EvPipelineFinish)
	if len(finishes) == 0 {
		t.Fatal("trace has no pipeline.finish events")
	}
	var afterRestore bool
	for _, f := range finishes {
		if f.Attr("duration") == nil {
			t.Fatalf("pipeline.finish missing duration: %+v", f)
		}
		if f.Seq > restore.Seq {
			afterRestore = true
		}
	}
	if !afterRestore {
		t.Fatal("no pipeline finished after the restore: trace did not continue into the resumed executor")
	}

	// The shared DB registry saw the same lifecycle.
	snap := db.Metrics().Snapshot()
	if snap.Counters[obs.Kinded(obs.MetricSuspends, "pipeline")] == 0 {
		t.Fatal("metrics missing pipeline suspend count")
	}
	var sawSuspendLat, sawResumeLat, sawBytes bool
	for _, h := range snap.Histograms {
		switch h.Name {
		case obs.Kinded(obs.MetricSuspendLatency, "pipeline"):
			sawSuspendLat = h.Count > 0
		case obs.Kinded(obs.MetricResumeLatency, "pipeline"):
			sawResumeLat = h.Count > 0
		case obs.Kinded(obs.MetricCheckpointBytes, "pipeline"):
			sawBytes = h.Count > 0 && h.Max >= info.TotalBytes
		}
	}
	if !sawSuspendLat || !sawResumeLat || !sawBytes {
		t.Fatalf("metrics snapshot incomplete: suspend=%v resume=%v bytes=%v", sawSuspendLat, sawResumeLat, sawBytes)
	}
}

// TestTracingDisabledByDefault verifies executions carry no trace (and pay
// no tracing cost) unless the DB was opened WithTracing, while the metrics
// registry is always available.
func TestTracingDisabledByDefault(t *testing.T) {
	db := openTPCH(t, 0.005)
	q, err := db.PrepareTPCH(6)
	if err != nil {
		t.Fatal(err)
	}
	exec, err := q.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := exec.Wait(); err != nil {
		t.Fatal(err)
	}
	if exec.Trace() != nil {
		t.Fatal("tracing must be opt-in")
	}
	if db.Metrics() == nil {
		t.Fatal("metrics registry must always exist")
	}
	if got := db.Metrics().Counter(obs.MetricPipelinesDone).Value(); got == 0 {
		t.Fatal("metrics registry did not record the run")
	}
}

// TestAdaptiveTrace verifies an adaptive run's report carries a decision
// event with the cost-model inputs (the Algorithm 1 audit trail).
func TestAdaptiveTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("adaptive calibration is slow")
	}
	db := Open(WithWorkers(2), WithCheckpointDir(t.TempDir()), WithTracing())
	if err := db.GenerateTPCH(0.02); err != nil {
		t.Fatal(err)
	}
	q, err := db.PrepareTPCH(3)
	if err != nil {
		t.Fatal(err)
	}
	a, err := q.NewAdaptive()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := a.Run(Scenario{Probability: 1, WindowStartFrac: 0.4, WindowEndFrac: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace == nil {
		t.Fatal("adaptive report must carry a trace when the DB traces")
	}
	if rep.Terminated {
		t.Skip("termination preempted the quiesce; no decision ran")
	}
	dec, ok := rep.Trace.Find(obs.EvDecision)
	if !ok {
		t.Fatal("trace missing strategy.decision event")
	}
	for _, key := range []string{"strategy", "cost_redo", "cost_pipeline", "cost_process", "ct", "pipeline_state_bytes", "est_total"} {
		if dec.Attr(key) == nil {
			t.Fatalf("decision event missing %s attr: %+v", key, dec)
		}
	}
	if _, ok := rep.Trace.Find(obs.EvOutcome); !ok {
		t.Fatal("trace missing strategy.outcome event")
	}
}
