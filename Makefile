# Development targets. CI (.github/workflows/ci.yml) runs exactly these,
# so local `make ci` reproduces the full pipeline.

GO ?= go

# Packages with real concurrency (executor workers, suspension strategies,
# adaptive controller, serving layer, public API) — the -race job covers these.
RACE_PKGS := . ./internal/engine/... ./internal/strategy/... ./internal/riveter/... ./internal/obs/... ./internal/server/... ./internal/blobstore/...

# Packages exercising the fault-injection matrix: the injectable
# filesystem, checkpoint crash/verify tests, the server degradation
# ladder, and the end-to-end crash matrix in the root package.
FAULT_PKGS := . ./internal/faultfs/... ./internal/checkpoint/... ./internal/server/...

.PHONY: all build test race vet fmt scheduler-suite blob-suite bench-smoke bench serve-smoke fault-matrix ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# The DAG scheduler suites under the race detector, twice: DAG-vs-serial
# schedule equivalence (engine plans and all 22 TPC-H queries),
# multi-pipeline mid-DAG suspend/resume, v1 checkpoint-format loading,
# and the server preemption that quiesces a whole DAG.
scheduler-suite:
	$(GO) test -race -count=2 \
		-run 'DAG|Scheduler|MaxConcurrentPipelines|InFlight|StateFormatV1|MultipleSuspensions|QueriesDAGMatchesSerial' \
		./internal/engine/... ./internal/tpch/... ./internal/server/...

# The blob-store subsystem under the race detector, twice: the full
# chunker/dedup/GC/claim unit suites, store-aware cost-model calibration,
# store-backed persistence strategies, and the cross-instance migration
# and delta-suspension acceptance tests in the server and root packages.
blob-suite:
	$(GO) test -race -count=2 ./internal/blobstore/... ./internal/costmodel/...
	$(GO) test -race -count=2 \
		-run 'Store|Blob|Claim|Migrat|Chunk' \
		. ./internal/server/... ./internal/engine/...

# One iteration of every engine benchmark plus the TPC-H per-query suite:
# keeps benchmark code compiling and running without paying for a real
# measurement, and emits BENCH_engine.json (ns/op, allocs/op, per-query
# wall times) for the CI artifact. BENCHTIME=5x for a real measurement.
bench-smoke:
	GO="$(GO)" sh scripts/bench_json.sh BENCH_engine.json

# Real engine microbenchmarks (compare against bench_results.txt).
bench:
	$(GO) test -run=NONE -bench=. -benchmem ./internal/engine/...

# End-to-end check of riveter-serve: boot on a tiny TPC-H dataset, submit
# concurrent HTTP queries, verify responses and serving metrics, then
# SIGTERM mid-load and verify the restarted server resumes the work.
serve-smoke:
	sh scripts/serve_smoke.sh

# The fault matrix under the race detector, twice — crash points, torn
# writes, ENOSPC, quarantine, retry/fallback/abandon ladders. -count=2
# also shakes out order dependence between injected faults.
fault-matrix:
	$(GO) test -race -count=2 \
		-run 'Fault|Crash|Verify|Quarantine|Retry|Sweep|Abandon|Degraded|ResumeInPlace|Injector|Budget|Torn|ENOSPC' \
		$(FAULT_PKGS)

ci: build vet fmt test race scheduler-suite blob-suite bench-smoke serve-smoke fault-matrix
