# Development targets. CI (.github/workflows/ci.yml) runs exactly these,
# so local `make ci` reproduces the full pipeline.

GO ?= go

# Packages with real concurrency (executor workers, suspension strategies,
# adaptive controller, serving layer, public API) — the -race job covers these.
RACE_PKGS := . ./internal/engine/... ./internal/expr/... ./internal/vector/... ./internal/strategy/... ./internal/riveter/... ./internal/obs/... ./internal/server/... ./internal/blobstore/... ./internal/controlplane/... ./internal/faultnet/... ./internal/fold/...

# Packages exercising the fault-injection matrix: the injectable
# filesystem, checkpoint crash/verify tests, the lineage-log crash matrix,
# the server degradation ladder, and the end-to-end crash matrix in the
# root package.
FAULT_PKGS := . ./internal/faultfs/... ./internal/checkpoint/... ./internal/strategy/... ./internal/server/...

# Pinned linter/scanner versions so CI and local runs agree; bump
# deliberately, not via @latest drift.
STATICCHECK_VERSION := 2025.1
GOVULNCHECK_VERSION := v1.1.4

.PHONY: all build test race vet fmt lint generate generate-check profile scheduler-suite blob-suite lineage-suite bench-smoke bench bench-gate serve-smoke fleet-suite chaos-suite fold-suite fault-matrix ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Static analysis (staticcheck) and known-vulnerability scan (govulncheck).
# CI installs the pinned versions; locally, missing binaries are skipped
# with a notice rather than failing the build — the container may not have
# network access to install them.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION))"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION))"; \
	fi

# Regenerate the emitted kernel layer (internal/engine/kernel/*_gen.go
# from internal/engine/kernelgen). The generator is deterministic, so a
# clean work tree after `make generate` proves the committed kernels
# match the generator — which is exactly what generate-check enforces.
generate:
	$(GO) generate ./...

generate-check: generate
	@out="$$(git status --porcelain -- '*_gen.go')"; \
	if [ -n "$$out" ]; then \
		echo "::error::generated kernels are stale; run 'make generate' and commit:"; \
		git --no-pager diff -- '*_gen.go' | head -100; \
		echo "$$out"; exit 1; \
	fi
	@echo "generated kernels are in sync with kernelgen"

# CPU and heap profiles for one TPC-H query benchmark (default Q18):
# `make profile QUERY=Q21` leaves cpu.prof/mem.prof plus the test binary
# in profiles/ — inspect with `go tool pprof profiles/tpch.test profiles/cpu.prof`.
QUERY ?= Q18
profile:
	@mkdir -p profiles
	$(GO) test ./internal/tpch -run '^$$' -bench 'BenchmarkTPCH/$(QUERY)$$' -benchmem \
		-benchtime 20x -cpuprofile profiles/cpu.prof -memprofile profiles/mem.prof \
		-o profiles/tpch.test
	@echo "profiles written: go tool pprof profiles/tpch.test profiles/cpu.prof"

# The DAG scheduler suites under the race detector, twice: DAG-vs-serial
# schedule equivalence (engine plans and all 22 TPC-H queries),
# multi-pipeline mid-DAG suspend/resume, v1 checkpoint-format loading,
# and the server preemption that quiesces a whole DAG.
scheduler-suite:
	$(GO) test -race -count=2 \
		-run 'DAG|Scheduler|MaxConcurrentPipelines|InFlight|StateFormatV1|MultipleSuspensions|QueriesDAGMatchesSerial' \
		./internal/engine/... ./internal/tpch/... ./internal/server/...

# The blob-store subsystem under the race detector, twice: the full
# chunker/dedup/GC/claim unit suites, store-aware cost-model calibration,
# store-backed persistence strategies, and the cross-instance migration
# and delta-suspension acceptance tests in the server and root packages.
blob-suite:
	$(GO) test -race -count=2 ./internal/blobstore/... ./internal/costmodel/...
	$(GO) test -race -count=2 \
		-run 'Store|Blob|Claim|Migrat|Chunk' \
		. ./internal/server/... ./internal/engine/...

# The write-ahead-lineage strategy under the race detector, twice: the
# log's unit and property tests, the every-byte crash matrix, the cost
# model's lineage terms, the server's lineage preemption/fallback/restore
# paths, and the 22-query strategy-equivalence suite in the root package.
lineage-suite:
	$(GO) test -race -count=2 -run 'Lineage' \
		. ./internal/strategy/... ./internal/costmodel/... ./internal/riveter/... ./internal/server/...

# One iteration of every engine benchmark plus the TPC-H per-query suite:
# keeps benchmark code compiling and running without paying for a real
# measurement, and emits BENCH_engine.json (ns/op, allocs/op, per-query
# wall times) for the CI artifact. BENCHTIME=5x for a real measurement.
bench-smoke:
	GO="$(GO)" sh scripts/bench_json.sh BENCH_engine.json

# Real engine microbenchmarks (compare against bench_results.txt).
bench:
	$(GO) test -run=NONE -bench=. -benchmem ./internal/engine/...

# Regression gate: diff the fresh bench-smoke JSON against the committed
# baseline. >25% ns/op or allocs/op regression on any engine or TPC-H
# benchmark fails; 10-25% (and regressions in the other sections) warn —
# allocation counts are deterministic, so an allocs/op jump is always a
# real code change, never noise. Also enforces the
# lineage acceptance ratio (LineageSuspend <= 10% of ProcessSuspendResume).
# Runs after bench-smoke, which leaves BENCH_engine.json in the work tree.
bench-gate:
	@git show HEAD:BENCH_engine.json > BENCH_baseline.json 2>/dev/null \
		|| { echo "no committed BENCH_engine.json baseline; skipping gate"; exit 0; }
	sh scripts/bench_compare.sh BENCH_baseline.json BENCH_engine.json; \
		status=$$?; rm -f BENCH_baseline.json; exit $$status

# End-to-end check of riveter-serve: boot on a tiny TPC-H dataset, submit
# concurrent HTTP queries, verify responses and serving metrics, then
# SIGTERM mid-load and verify the restarted server resumes the work.
serve-smoke:
	sh scripts/serve_smoke.sh

# The fleet control plane: the controlplane package under the race
# detector (registry death detection, cost-aware picking, the rolling-
# kill failover acceptance test, scale-to-zero through the proxy, and
# spot-notice drains), the server's fleet-facing surface, the cloud
# simulation edges — then the multi-process smoke: riveter-proxy in
# front of three riveter-serve instances with two SIGKILLs mid-load and
# a scale-to-zero round trip, all over real HTTP.
fleet-suite:
	$(GO) test -race -count=1 ./internal/controlplane/... ./internal/cloud/...
	$(GO) test -race -count=1 -run 'Health|Keyed|Idle|Adopt|Fleet' ./internal/server/...
	sh scripts/proxy_smoke.sh

# The chaos suite under the race detector, twice: the faultnet
# fault-injection layer's unit tests, the breaker/retry classification
# tests, and the five deterministic chaos scenarios — asymmetric
# partition with split-brain adoption, double-adopt fencing, flap
# quarantine, slow-link failover, and the N-waiter same-key kill — each
# of which must land on exactly-once execution. -count=2 proves the
# seeded plans replay.
chaos-suite:
	$(GO) test -race -count=2 ./internal/faultnet/...
	$(GO) test -race -count=2 -timeout 30m \
		-run 'TestChaos|TestBreaker|TestRetry' ./internal/controlplane/

# The shared-execution subsystem under the race detector, twice: the scan
# hub and subplan cache unit suites, the 22-query fold-vs-isolated
# equivalence and suspend-one-rider acceptance tests in the root package,
# and the server's whole-plan folding, plan cache, and rider-aware
# preemption tests.
fold-suite:
	$(GO) test -race -count=2 ./internal/fold/...
	$(GO) test -race -count=2 -run 'Fold|PlanCache|RawSQL' \
		. ./internal/server/...

# The fault matrix under the race detector, twice — crash points, torn
# writes, ENOSPC, quarantine, retry/fallback/abandon ladders. -count=2
# also shakes out order dependence between injected faults.
fault-matrix:
	$(GO) test -race -count=2 \
		-run 'Fault|Crash|Verify|Quarantine|Retry|Sweep|Abandon|Degraded|ResumeInPlace|Injector|Budget|Torn|ENOSPC' \
		$(FAULT_PKGS)

ci: build vet fmt lint test race scheduler-suite blob-suite lineage-suite bench-smoke bench-gate serve-smoke fleet-suite chaos-suite fold-suite fault-matrix
