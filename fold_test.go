package riveter

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"github.com/riveterdb/riveter/internal/obs"
)

// openFoldTPCH opens a fold-enabled database over the same deterministic
// TPC-H data openTPCH generates, so results are comparable across the two.
func openFoldTPCH(t testing.TB, sf float64) *DB {
	t.Helper()
	db := Open(WithWorkers(2), WithCheckpointDir(t.TempDir()), WithTracing(), WithFold())
	if err := db.GenerateTPCH(sf); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestFoldEquivalenceTPCH is the shared-execution correctness property: for
// every TPC-H query, a fold-enabled database — scans riding shared hubs,
// repeated runs folding onto cached subplans — returns results
// byte-identical to an isolated database over the same data. Each query
// runs twice on the fold side so the second run exercises the subplan
// cache, not just the scan hubs.
func TestFoldEquivalenceTPCH(t *testing.T) {
	const sf = 0.005
	plain := openTPCH(t, sf)
	folded := openFoldTPCH(t, sf)
	ctx := context.Background()
	for id := 1; id <= 22; id++ {
		qp, err := plain.PrepareTPCH(id)
		if err != nil {
			t.Fatal(err)
		}
		want, err := qp.Run(ctx)
		if err != nil {
			t.Fatalf("Q%d isolated: %v", id, err)
		}
		qf, err := folded.PrepareTPCH(id)
		if err != nil {
			t.Fatal(err)
		}
		for pass := 1; pass <= 2; pass++ {
			got, err := qf.Run(ctx)
			if err != nil {
				t.Fatalf("Q%d folded pass %d: %v", id, pass, err)
			}
			if got.SortedKey() != want.SortedKey() {
				t.Fatalf("Q%d folded pass %d differs from isolated run", id, pass)
			}
		}
	}
	snap := folded.Metrics().Snapshot()
	// The queries above run one at a time, so every hub read takes the
	// single-rider fast path: direct base reads, no window maintenance.
	if snap.Counters[obs.MetricFoldDirectReads] == 0 {
		t.Error("no hub reads: scans did not ride shared hubs")
	}
	if snap.Counters[obs.MetricFoldSubplanHits] == 0 {
		t.Error("no subplan hits: second passes did not fold onto cached subplans")
	}
	if snap.Gauges[obs.MetricFoldHubs] == 0 {
		t.Error("no hubs registered")
	}
}

// TestFoldSuspendOneRider: two queries share the lineitem hub; one is
// suspended mid-run. The survivor must complete unaffected, and the
// detached session must resume byte-identical BOTH ways — rejoining the
// hubs on the fold database, and privatizing on a database with folding
// off. Run under -race this also hammers the hub from the suspension path.
func TestFoldSuspendOneRider(t *testing.T) {
	const sf = 0.02
	db := openFoldTPCH(t, sf)
	ctx := context.Background()

	q1, err := db.PrepareTPCH(1)
	if err != nil {
		t.Fatal(err)
	}
	q6, err := db.PrepareTPCH(6)
	if err != nil {
		t.Fatal(err)
	}
	want1, err := q1.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want6, err := q6.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// Both executions ride the lineitem hub concurrently.
	e1, err := q1.Start(ctx)
	if err != nil {
		t.Fatal(err)
	}
	e6, err := q6.Start(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := e1.Suspend(PipelineLevel); err != nil {
		t.Fatal(err)
	}

	// The survivor never sees the detach: the hub keeps streaming.
	if err := e6.Wait(); err != nil {
		t.Fatalf("survivor: %v", err)
	}
	res6, err := e6.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res6.SortedKey() != want6.SortedKey() {
		t.Fatal("survivor result changed after a rider detached")
	}
	// The two executions overlapped, so the lineitem hub actually ran its
	// shared window for at least part of the survivor's scan.
	if db.Metrics().Snapshot().Counters[obs.MetricFoldFills] == 0 {
		t.Error("no shared-window fills during the concurrent phase")
	}

	werr := e1.Wait()
	if werr == nil {
		t.Skip("query finished before the suspension landed")
	}
	if !errors.Is(werr, ErrSuspended) {
		t.Fatalf("Wait = %v", werr)
	}
	path := filepath.Join(db.CheckpointDir(), "fold-rider.rvck")
	if _, err := e1.Checkpoint(path); err != nil {
		t.Fatal(err)
	}

	// Resume path A — rejoin: same fold database, the restored pipelines
	// ride the hubs again (reads below the window privatize until the
	// rider converges on the stream head).
	got, err := q1.Resume(ctx, path)
	if err != nil {
		t.Fatalf("rejoin resume: %v", err)
	}
	if got.SortedKey() != want1.SortedKey() {
		t.Fatal("rejoin resume differs from clean run")
	}

	// Resume path B — privatize: a database with folding off restores the
	// same checkpoint onto plain private scans.
	iso := openTPCH(t, sf)
	q1iso, err := iso.PrepareTPCH(1)
	if err != nil {
		t.Fatal(err)
	}
	got, err = q1iso.Resume(ctx, path)
	if err != nil {
		t.Fatalf("privatize resume: %v", err)
	}
	if got.SortedKey() != want1.SortedKey() {
		t.Fatal("privatize resume differs from clean run")
	}
}
