// Spot market (the paper's Case 3: computation with ephemeral resources).
//
// A long analytic query runs on a simulated spot instance whose price
// follows a spiky trace; when the price surges past the bid, the instance
// issues a reclamation notice. The adaptive controller decides per episode
// whether to suspend (and how) or to let the work be lost and redone.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/riveterdb/riveter"
)

func main() {
	db := riveter.Open(riveter.WithWorkers(4))
	fmt.Println("generating TPC-H at scale factor 0.02 ...")
	if err := db.GenerateTPCH(0.02); err != nil {
		log.Fatal(err)
	}

	q, err := db.PrepareTPCH(21)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("calibrating Q21 and training the size estimator ...")
	a, err := q.NewAdaptive()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("normal execution time: %v\n\n", a.NormalTime().Round(time.Millisecond))

	// Each episode is one attempt to run the query on a fresh spot
	// instance. The reclamation risk differs per episode: sometimes the
	// window opens early (price spike right away), sometimes late,
	// sometimes the instance survives.
	episodes := []struct {
		name string
		sc   riveter.Scenario
	}{
		{"calm market (no reclamation expected)", riveter.Scenario{Probability: 0.1, WindowStartFrac: 0.3, WindowEndFrac: 0.7}},
		{"early price spike", riveter.Scenario{Probability: 0.9, WindowStartFrac: 0.05, WindowEndFrac: 0.3}},
		{"mid-flight reclamation risk", riveter.Scenario{Probability: 0.9, WindowStartFrac: 0.4, WindowEndFrac: 0.7}},
		{"reclamation near completion", riveter.Scenario{Probability: 0.7, WindowStartFrac: 0.75, WindowEndFrac: 1.0}},
	}

	var totalNormal, totalActual time.Duration
	for i, ep := range episodes {
		rep, err := a.Run(ep.sc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("episode %d: %s\n", i+1, ep.name)
		fmt.Printf("  strategy selected: %-9v suspended=%-5v terminated=%-5v\n",
			rep.Strategy, rep.Suspended, rep.Terminated)
		if rep.Suspended {
			fmt.Printf("  checkpoint: %d bytes; cost-model runtime %v\n", rep.PersistedBytes, rep.SelectionTime)
		}
		fmt.Printf("  effective time %v vs normal %v (overhead %v)\n\n",
			rep.TotalTime.Round(time.Millisecond),
			rep.NormalTime.Round(time.Millisecond),
			(rep.TotalTime - rep.NormalTime).Round(time.Millisecond))
		totalNormal += rep.NormalTime
		totalActual += rep.TotalTime
	}
	fmt.Printf("workload total: %v effective vs %v normal across %d episodes\n",
		totalActual.Round(time.Millisecond), totalNormal.Round(time.Millisecond), len(episodes))
	fmt.Println("\nwithout suspension, every reclamation would have cost a full re-run;")
	fmt.Println("Riveter converts reclamations into checkpoint+resume cycles when that is cheaper.")
}
