// Heterogeneous workloads (the paper's Case 1).
//
// A long-running analytic query saturates the node while short dashboard
// queries queue behind it. The scheduler suspends the long query at a
// pipeline breaker, drains the short queries, and resumes the long one —
// turning one long-running query into a sequence of short-running pieces.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"github.com/riveterdb/riveter"
)

func main() {
	ctx := context.Background()
	db := riveter.Open(riveter.WithWorkers(4))
	fmt.Println("generating TPC-H at scale factor 0.02 ...")
	if err := db.GenerateTPCH(0.02); err != nil {
		log.Fatal(err)
	}

	shortQueries := []string{
		"SELECT count(*) AS open_orders FROM orders WHERE o_orderstatus = 'O'",
		"SELECT o_orderpriority, count(*) AS n FROM orders GROUP BY o_orderpriority ORDER BY o_orderpriority",
		"SELECT max(l_shipdate) AS latest_ship FROM lineitem",
	}

	// Baseline: short queries wait for the long query to finish.
	long, err := db.PrepareTPCH(21)
	if err != nil {
		log.Fatal(err)
	}
	baselineStart := time.Now()
	if _, err := long.Run(ctx); err != nil {
		log.Fatal(err)
	}
	for _, s := range shortQueries {
		if _, err := db.Query(ctx, s); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("FIFO baseline: last short query completes %v after arrival\n\n",
		time.Since(baselineStart).Round(time.Millisecond))

	// Riveter: suspend the long query, run the short ones, resume.
	fmt.Println("with suspension:")
	exec, err := long.Start(ctx)
	if err != nil {
		log.Fatal(err)
	}
	// The short queries arrive shortly after the long query started.
	time.Sleep(10 * time.Millisecond)
	arrival := time.Now()
	if err := exec.Suspend(riveter.PipelineLevel); err != nil {
		log.Fatal(err)
	}
	werr := exec.Wait()
	switch {
	case werr == nil:
		fmt.Println("  long query finished before the suspension point; nothing to do")
	case errors.Is(werr, riveter.ErrSuspended):
		ckpt := filepath.Join(db.CheckpointDir(), "long.rvck")
		info, err := exec.Checkpoint(ckpt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  suspended long query at a breaker (%d bytes persisted)\n", info.TotalBytes)

		for i, s := range shortQueries {
			st := time.Now()
			res, err := db.Query(ctx, s)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  short query %d: %d rows in %v (waited %v total)\n",
				i+1, res.NumRows(), time.Since(st).Round(time.Millisecond),
				time.Since(arrival).Round(time.Millisecond))
		}

		resumeStart := time.Now()
		res, err := long.Resume(ctx, ckpt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  resumed long query, finished in %v (%d rows)\n",
			time.Since(resumeStart).Round(time.Millisecond), res.NumRows())
		os.Remove(ckpt)
	default:
		log.Fatal(werr)
	}
	fmt.Printf("\nshort-query latency drops from the long query's full runtime to the\n")
	fmt.Printf("suspension lag plus their own execution — the long query only pays one\n")
	fmt.Printf("checkpoint+resume cycle.\n")
}
