// Heterogeneous workloads (the paper's Case 1), served by the scheduling
// subsystem in internal/server.
//
// A long-running analytic query saturates the node while short dashboard
// queries queue behind it. Under the FIFO baseline the shorts wait for the
// long query to finish; under the suspension-aware policy the scheduler
// preempts the long query at a pipeline breaker (checkpointing it), drains
// the shorts, and resumes the long query from its checkpoint — turning one
// long-running query into a sequence of short-running pieces, with no
// hand-rolled suspend/drain/resume loop in sight.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/riveterdb/riveter"
	"github.com/riveterdb/riveter/internal/server"
)

var shortQueries = []string{
	"SELECT count(*) AS open_orders FROM orders WHERE o_orderstatus = 'O'",
	"SELECT o_orderpriority, count(*) AS n FROM orders GROUP BY o_orderpriority ORDER BY o_orderpriority",
	"SELECT max(l_shipdate) AS latest_ship FROM lineitem",
}

// runWorkload submits the long query, then the shorts shortly after, and
// reports each short query's completion latency since its arrival.
func runWorkload(db *riveter.DB, policy server.Policy) (shortLatencies []time.Duration, longInfo server.Info, err error) {
	srv, err := server.New(server.Config{DB: db, Slots: 1, Policy: policy})
	if err != nil {
		return nil, server.Info{}, err
	}
	defer srv.Shutdown(context.Background())

	long, err := srv.Submit(server.Request{TPCH: 21, Priority: server.Batch})
	if err != nil {
		return nil, server.Info{}, err
	}
	// The short queries arrive shortly after the long query started.
	time.Sleep(10 * time.Millisecond)
	arrivals := make([]time.Time, len(shortQueries))
	shorts := make([]*server.Session, len(shortQueries))
	for i, s := range shortQueries {
		arrivals[i] = time.Now()
		if shorts[i], err = srv.Submit(server.Request{SQL: s, Priority: server.Interactive}); err != nil {
			return nil, server.Info{}, err
		}
	}
	for i, sess := range shorts {
		if _, err := srv.Wait(context.Background(), sess.ID()); err != nil {
			return nil, server.Info{}, err
		}
		shortLatencies = append(shortLatencies, time.Since(arrivals[i]))
	}
	if _, err := srv.Wait(context.Background(), long.ID()); err != nil {
		return nil, server.Info{}, err
	}
	info, _ := srv.Info(long.ID())
	return shortLatencies, info, nil
}

func main() {
	db := riveter.Open(riveter.WithWorkers(4))
	fmt.Println("generating TPC-H at scale factor 0.02 ...")
	if err := db.GenerateTPCH(0.02); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nFIFO baseline (shorts wait for the long query):")
	base, _, err := runWorkload(db, server.FIFO{})
	if err != nil {
		log.Fatal(err)
	}
	for i, d := range base {
		fmt.Printf("  short query %d completes %v after arrival\n", i+1, d.Round(time.Millisecond))
	}

	fmt.Println("\nsuspension-aware policy (long query preempted at a breaker):")
	pre, longInfo, err := runWorkload(db, server.SuspensionAware{})
	if err != nil {
		log.Fatal(err)
	}
	for i, d := range pre {
		fmt.Printf("  short query %d completes %v after arrival\n", i+1, d.Round(time.Millisecond))
	}
	fmt.Printf("  long query: %d preemption(s), ran %v, waited %v\n",
		longInfo.Preemptions, longInfo.Ran.Round(time.Millisecond), longInfo.Waited.Round(time.Millisecond))

	fmt.Printf("\nshort-query latency drops from the long query's full runtime to the\n")
	fmt.Printf("suspension lag plus their own execution — the long query only pays\n")
	fmt.Printf("checkpoint+resume cycles.\n")
}
