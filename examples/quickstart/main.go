// Quickstart: open a Riveter database, generate a small TPC-H dataset, run
// SQL, and survive a suspension — the 60-second tour of the framework.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"github.com/riveterdb/riveter"
)

func main() {
	ctx := context.Background()

	// 1. Open a database and load data.
	db := riveter.Open(riveter.WithWorkers(4))
	fmt.Println("generating TPC-H at scale factor 0.01 ...")
	if err := db.GenerateTPCH(0.01); err != nil {
		log.Fatal(err)
	}
	for _, t := range db.Tables() {
		n, _ := db.NumRows(t)
		fmt.Printf("  %-10s %8d rows\n", t, n)
	}

	// 2. Ad-hoc SQL.
	res, err := db.Query(ctx, `
		SELECT l_returnflag, l_linestatus,
		       sum(l_quantity)       AS sum_qty,
		       avg(l_extendedprice)  AS avg_price,
		       count(*)              AS count_order
		FROM lineitem
		WHERE l_shipdate <= DATE '1998-09-02'
		GROUP BY l_returnflag, l_linestatus
		ORDER BY l_returnflag, l_linestatus`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npricing summary (TPC-H Q1 in SQL):\n%s\n", res)

	// 3. A benchmark query with suspension and resumption.
	q, err := db.PrepareTPCH(21) // the heaviest query: suppliers who kept orders waiting
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("running %s with a pipeline-level suspension mid-flight ...\n", q.Name())
	exec, err := q.Start(ctx)
	if err != nil {
		log.Fatal(err)
	}
	time.AfterFunc(20*time.Millisecond, func() { _ = exec.Suspend(riveter.PipelineLevel) })

	switch err := exec.Wait(); {
	case err == nil:
		r, _ := exec.Result()
		fmt.Printf("completed before the suspension landed: %d rows\n", r.NumRows())
	case errors.Is(err, riveter.ErrSuspended):
		path := db.NewCheckpointPath("q21")
		info, err := exec.Checkpoint(path)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("suspended at a pipeline breaker; checkpoint: %d bytes (%s)\n", info.TotalBytes, info.Kind)

		// ... the spot instance is reclaimed here; later, on fresh capacity:
		r, err := q.Resume(ctx, path)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("resumed from checkpoint and finished: %d rows\n%s", r.NumRows(), r.Format(5))
	default:
		log.Fatal(err)
	}
}
