// Query migration (the paper's Case 2: database migration).
//
// Instead of live-migrating an entire database, Riveter suspends one
// resource-intensive query on the source node, ships the (small)
// pipeline-level checkpoint, and resumes it on a destination node that has
// its own copy of the data — with a different worker configuration, which
// pipeline-level checkpoints expressly allow.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"github.com/riveterdb/riveter"
)

func main() {
	ctx := context.Background()
	dataDir := filepath.Join(os.TempDir(), "riveter-migration-data")

	// Provision shared data: both "nodes" load the same table files, as two
	// cloud nodes would read the same object-store snapshot.
	fmt.Println("writing shared TPC-H snapshot ...")
	seedDB := riveter.Open()
	if err := seedDB.GenerateTPCH(0.02); err != nil {
		log.Fatal(err)
	}
	if err := seedDB.SaveDir(dataDir); err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dataDir)

	// Source node: 2 workers, starts the heavy query.
	source := riveter.Open(riveter.WithWorkers(2))
	if err := source.LoadDir(dataDir); err != nil {
		log.Fatal(err)
	}
	srcQuery, err := source.PrepareTPCH(9) // product type profit measure
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("source node (2 workers): starting Q9 ...")
	exec, err := srcQuery.Start(ctx)
	if err != nil {
		log.Fatal(err)
	}

	// The scheduler decides to migrate this query off the node.
	time.AfterFunc(15*time.Millisecond, func() { _ = exec.Suspend(riveter.PipelineLevel) })
	err = exec.Wait()
	if err == nil {
		r, _ := exec.Result()
		fmt.Printf("query finished before migration was needed (%d rows)\n", r.NumRows())
		return
	}
	if !errors.Is(err, riveter.ErrSuspended) {
		log.Fatal(err)
	}
	ckpt := source.NewCheckpointPath("q9-migrate")
	info, err := exec.Checkpoint(ckpt)
	if err != nil {
		log.Fatal(err)
	}
	defer os.Remove(ckpt)
	fmt.Printf("source node: suspended Q9, checkpoint %d bytes -> %s\n", info.TotalBytes, ckpt)
	fmt.Println("  (migrating a query costs the intermediate state, not the database)")

	// Destination node: different worker count, same data, resumes.
	dest := riveter.Open(riveter.WithWorkers(4))
	if err := dest.LoadDir(dataDir); err != nil {
		log.Fatal(err)
	}
	destQuery, err := dest.PrepareTPCH(9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("destination node (4 workers): resuming from checkpoint ...")
	start := time.Now()
	res, err := destQuery.Resume(ctx, ckpt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("destination node: completed in %v, %d rows\n",
		time.Since(start).Round(time.Millisecond), res.NumRows())
	fmt.Printf("\nfirst rows:\n%s", res.Format(6))

	// Sanity: the migrated result matches a clean local run.
	clean, err := destQuery.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	if clean.SortedKey() == res.SortedKey() {
		fmt.Println("\nverified: migrated result equals a clean run on the destination")
	} else {
		fmt.Println("\nMISMATCH between migrated and clean results")
	}
}
