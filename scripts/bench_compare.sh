#!/bin/sh
# bench_compare.sh — diff two BENCH_engine.json files (see bench_json.sh)
# and gate performance regressions. For every benchmark in a gated section
# (default: engine and tpch) a ns/op or allocs/op regression above FAIL_PCT
# (default 25%) fails the run; regressions between WARN_PCT (default 10%)
# and FAIL_PCT only warn, as do regressions in the non-gated sections.
# Allocation counts are gated with the same thresholds as wall time because
# they are deterministic — an allocs/op jump is always a real code change,
# never machine noise, and the fused kernel layer exists precisely to keep
# the hot paths allocation-free. Benchmarks present
# in one file but not the other are reported, and a duplicate benchmark name
# within a section is an error — two benchmarks whose names collapse to the
# same JSON key would silently gate each other's numbers.
#
# The script also enforces the lineage acceptance ratio: LineageSuspend
# (strategy section) must cost at most LINEAGE_RATIO_PCT (default 10%) of
# ProcessSuspendResume (engine section) — the write-ahead log makes the
# suspension itself a tail flush, not a state dump.
#
# And the proxy resilience budget: the controlplane ProxyOverhead
# benchmark's paired overhead_pct (p.do with breaker/retry accounting vs
# a bare client, alternating per iteration against the same loopback
# instance) must stay under PROXY_OVERHEAD_PCT (default 5%) — the
# resilience layer must be free on the happy path.
#
# And the shared-execution budget (fold section): FoldBurst32's paired
# fold_speedup (the same 32-session mixed TPC-H burst served with folding
# off and on) must reach FOLD_SPEEDUP_MIN (default 1.5), and
# FoldSingleOverhead's paired single_overhead_pct (a lone session on a
# fold-enabled database vs a plain one) must stay under FOLD_OVERHEAD_PCT
# (default 10%) — sharing must pay off under concurrency without taxing
# the session that has nobody to share with.
#
# Messages use GitHub workflow annotations (::error::/::warning::), which
# degrade to plain text locally.
#
# Usage: sh scripts/bench_compare.sh baseline.json fresh.json
set -eu

BASE=${1:?usage: bench_compare.sh baseline.json fresh.json}
FRESH=${2:?usage: bench_compare.sh baseline.json fresh.json}
FAIL_PCT=${FAIL_PCT:-25}
WARN_PCT=${WARN_PCT:-10}
GATED_SECTIONS=${GATED_SECTIONS:-engine tpch}
LINEAGE_RATIO_PCT=${LINEAGE_RATIO_PCT:-10}
PROXY_OVERHEAD_PCT=${PROXY_OVERHEAD_PCT:-5}
FOLD_SPEEDUP_MIN=${FOLD_SPEEDUP_MIN:-1.5}
FOLD_OVERHEAD_PCT=${FOLD_OVERHEAD_PCT:-10}

awk -v basefile="$BASE" -v freshfile="$FRESH" \
    -v failpct="$FAIL_PCT" -v warnpct="$WARN_PCT" \
    -v gated="$GATED_SECTIONS" -v ratiopct="$LINEAGE_RATIO_PCT" \
    -v proxypct="$PROXY_OVERHEAD_PCT" \
    -v foldmin="$FOLD_SPEEDUP_MIN" -v foldovpct="$FOLD_OVERHEAD_PCT" '
# load parses one bench_json.sh document into ns[<section>/<name>] and
# al[<section>/<name>] (allocs/op, when present), recording the key order
# in keys[] and flagging duplicates.
function load(file, ns, al, keys, nkeys,    line, sec, name, key, q, n) {
    sec = ""
    while ((getline line < file) > 0) {
        if (match(line, /^  "[a-z_]+": \[/)) {
            n = split(line, q, "\"")
            sec = q[2]
            continue
        }
        if (line !~ /"name": /) continue
        n = split(line, q, "\"")
        name = q[4]
        if (sec == "" || name == "") continue
        key = sec "/" name
        if (!match(line, /"ns_per_op": [0-9.eE+-]+/)) continue
        if (key in ns) {
            printf "::error::duplicate benchmark name %s in %s — rename one (names must stay distinct after suffix stripping)\n", name, file
            errs++
            continue
        }
        ns[key] = substr(line, RSTART + 13, RLENGTH - 13) + 0
        if (match(line, /"allocs_per_op": [0-9.eE+-]+/))
            al[key] = substr(line, RSTART + 17, RLENGTH - 17) + 0
        keys[++nkeys[0]] = key
    }
    close(file)
    return
}

BEGIN {
    errs = 0; warns = 0
    nb[0] = 0; nf[0] = 0
    load(basefile, bns, bal, bkeys, nb)
    load(freshfile, fns, fal, fkeys, nf)
    if (nb[0] == 0) { printf "::error::no benchmarks parsed from baseline %s\n", basefile; errs++ }
    if (nf[0] == 0) { printf "::error::no benchmarks parsed from fresh run %s\n", freshfile; errs++ }

    ngate = split(gated, gs, /[ \t]+/)
    for (i = 1; i <= ngate; i++) gate[gs[i]] = 1

    for (i = 1; i <= nf[0]; i++) {
        key = fkeys[i]
        split(key, parts, "/")
        sec = parts[1]
        if (!(key in bns)) {
            printf "::notice::new benchmark %s (no baseline to compare)\n", key
            continue
        }
        old = bns[key]; new = fns[key]
        if (old <= 0) continue
        pct = (new - old) / old * 100
        if (pct > failpct && (sec in gate)) {
            printf "::error::%s regressed %.1f%%: %.0f -> %.0f ns/op (limit %s%%)\n", key, pct, old, new, failpct
            errs++
        } else if (pct > warnpct) {
            printf "::warning::%s slower by %.1f%%: %.0f -> %.0f ns/op\n", key, pct, old, new
            warns++
        } else if (pct < -warnpct) {
            printf "%s improved %.1f%%: %.0f -> %.0f ns/op\n", key, -pct, old, new
        }
        # Allocation gate: same thresholds, same sections.
        if (!((key in bal) && (key in fal)) || bal[key] <= 0) continue
        apct = (fal[key] - bal[key]) / bal[key] * 100
        if (apct > failpct && (sec in gate)) {
            printf "::error::%s allocates %.1f%% more: %.0f -> %.0f allocs/op (limit %s%%)\n", key, apct, bal[key], fal[key], failpct
            errs++
        } else if (apct > warnpct) {
            printf "::warning::%s allocates %.1f%% more: %.0f -> %.0f allocs/op\n", key, apct, bal[key], fal[key]
            warns++
        } else if (apct < -warnpct) {
            printf "%s allocates %.1f%% less: %.0f -> %.0f allocs/op\n", key, -apct, bal[key], fal[key]
        }
    }
    for (i = 1; i <= nb[0]; i++) {
        key = bkeys[i]
        if (!(key in fns)) {
            printf "::warning::benchmark %s present in baseline but missing from the fresh run\n", key
            warns++
        }
    }

    # The lineage acceptance ratio: suspension-by-seal must stay a small
    # fraction of the process-checkpoint round trip.
    lin = fns["strategy/LineageSuspend"]
    proc = fns["engine/ProcessSuspendResume"]
    if (lin > 0 && proc > 0) {
        ratio = lin / proc * 100
        if (ratio > ratiopct) {
            printf "::error::LineageSuspend is %.1f%% of ProcessSuspendResume (%.0f / %.0f ns/op), above the %s%% ceiling\n", ratio, lin, proc, ratiopct
            errs++
        } else {
            printf "lineage suspend is %.1f%% of a process suspend+resume (%.0f / %.0f ns/op, ceiling %s%%)\n", ratio, lin, proc, ratiopct
        }
    } else if (proc > 0) {
        printf "::warning::strategy/LineageSuspend missing from the fresh run; ratio check skipped\n"
        warns++
    }

    # The proxy resilience budget: the paired overhead metric from the
    # fresh run (baseline-independent — pairing already cancels machine
    # drift) must stay under the ceiling.
    overhead = ""
    sec = ""
    while ((getline line < freshfile) > 0) {
        if (match(line, /^  "[a-z_]+": \[/)) {
            split(line, q, "\"")
            sec = q[2]
            continue
        }
        if (sec != "controlplane" || line !~ /"name": "ProxyOverhead"/) continue
        if (match(line, /"overhead_pct": -?[0-9.eE+-]+/))
            overhead = substr(line, RSTART + 16, RLENGTH - 16) + 0
    }
    close(freshfile)
    if (overhead == "") {
        printf "::warning::controlplane/ProxyOverhead missing from the fresh run; proxy overhead gate skipped\n"
        warns++
    } else if (overhead > proxypct) {
        printf "::error::proxy resilience layer costs %.1f%% over a bare client (ceiling %s%%)\n", overhead, proxypct
        errs++
    } else {
        printf "proxy resilience overhead is %.1f%% of a bare client request (ceiling %s%%)\n", overhead, proxypct
    }

    # The shared-execution budget: both metrics come paired from the
    # fresh run (folding off vs on, interleaved), so the gate is
    # baseline-independent like the proxy one.
    speedup = ""; foldov = ""
    sec = ""
    while ((getline line < freshfile) > 0) {
        if (match(line, /^  "[a-z_]+": \[/)) {
            split(line, q, "\"")
            sec = q[2]
            continue
        }
        if (sec != "fold") continue
        if (line ~ /"name": "FoldBurst32"/ && match(line, /"fold_speedup": [0-9.eE+-]+/))
            speedup = substr(line, RSTART + 16, RLENGTH - 16) + 0
        if (line ~ /"name": "FoldSingleOverhead"/ && match(line, /"single_overhead_pct": -?[0-9.eE+-]+/))
            foldov = substr(line, RSTART + 22, RLENGTH - 22) + 0
    }
    close(freshfile)
    if (speedup == "") {
        printf "::warning::fold/FoldBurst32 missing from the fresh run; fold speedup gate skipped\n"
        warns++
    } else if (speedup + 0 < foldmin + 0) {
        printf "::error::folded 32-session burst is only %.2fx an isolated one (floor %sx)\n", speedup, foldmin
        errs++
    } else {
        printf "folded 32-session burst runs %.2fx the isolated aggregate throughput (floor %sx)\n", speedup, foldmin
    }
    if (foldov == "") {
        printf "::warning::fold/FoldSingleOverhead missing from the fresh run; fold single-session gate skipped\n"
        warns++
    } else if (foldov > foldovpct) {
        printf "::error::fold-enabled database costs a lone session %.1f%% (ceiling %s%%)\n", foldov, foldovpct
        errs++
    } else {
        printf "fold machinery costs a lone session %.1f%% (ceiling %s%%)\n", foldov, foldovpct
    }

    printf "bench gate: %d benchmark(s) compared, %d warning(s), %d error(s)\n", nf[0], warns, errs
    exit errs > 0 ? 1 : 0
}'
