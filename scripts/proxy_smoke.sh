#!/bin/sh
# proxy-smoke: end-to-end check of the fleet control plane. Boot
# riveter-proxy in front of three riveter-serve instances sharing one
# blob store, submit a burst of keyed batch queries through the proxy,
# then SIGKILL two instances mid-load (with a replacement registering in
# between) — every session must still complete through the same proxy
# endpoint, and the proxy's p99 round-trip must stay bounded. A second
# leg proves scale-to-zero over the wire: an idle instance parks all its
# sessions into the store (zero live executions), and the next proxy
# request wakes them to completion. A third leg arms -chaos-plan on a
# fresh proxy: a drop-window partition of the instance's query path must
# fail fast (breaker open, no spurious death), then heal — the breaker
# re-closes off a health probe and the same session key completes.
# Requires curl.
set -eu

PPORT="${PPORT:-18100}"
PBASE="http://127.0.0.1:$PPORT"
WORK="$(mktemp -d)"
SERVE="$WORK/riveter-serve"
PROXY="$WORK/riveter-proxy"
STORE="$WORK/store"
SF=0.02

# Instance PIDs by slot; cleanup kills whatever is still up.
PIDS=""
cleanup() {
    for p in $PIDS ${PROXY_PID:-}; do
        kill -9 "$p" 2>/dev/null || true
    done
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "== building riveter-serve and riveter-proxy"
go build -o "$SERVE" ./cmd/riveter-serve
go build -o "$PROXY" ./cmd/riveter-proxy

echo "== booting riveter-proxy on $PBASE"
"$PROXY" -addr "127.0.0.1:$PPORT" -health-interval 50ms -dead-after 2 &
PROXY_PID=$!
i=0
until curl -fsS "$PBASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -gt 100 ] || { sleep 0.2; continue; }
    echo "proxy did not become healthy" >&2
    exit 1
done

start_instance() { # $1 = id, $2 = port, extra flags after
    id="$1" port="$2"
    shift 2
    "$SERVE" -addr "127.0.0.1:$port" -sf "$SF" -workers 1 -slots 1 \
        -ckdir "$WORK/ckpt-$id" -store "$STORE" -instance "$id" \
        -control "$PBASE" -advertise "http://127.0.0.1:$port" "$@" &
    PIDS="$PIDS $!"
    eval "PID_$id=$!"
}

wait_alive() { # $1 = expected alive count
    i=0
    while [ "$(curl -fsS "$PBASE/fleet/instances" | grep -c '"alive": true')" -ne "$1" ]; do
        i=$((i + 1))
        if [ "$i" -gt 150 ]; then
            echo "fleet never reached $1 alive instances:" >&2
            curl -fsS "$PBASE/fleet/instances" >&2 || true
            exit 1
        fi
        sleep 0.2
    done
}

echo "== booting instances a, b, c on the shared store"
start_instance a 18101
start_instance b 18102
start_instance c 18103
wait_alive 3

echo "== submitting a burst of keyed batch queries through the proxy"
n=1
while [ "$n" -le 6 ]; do
    curl -fsS "$PBASE/query" -d "{\"tpch\":21,\"priority\":\"batch\",\"session\":\"k$n\"}" |
        grep -q '"session_key"' || { echo "submit k$n failed" >&2; exit 1; }
    n=$((n + 1))
done

echo "== SIGKILL instance a mid-load"
kill -9 "$PID_a"
wait_alive 2

echo "== registering replacement instance d"
start_instance d 18104
wait_alive 3

echo "== SIGKILL instance b mid-load"
kill -9 "$PID_b"
wait_alive 2

echo "== every session completes through the proxy despite two dead instances"
n=1
while [ "$n" -le 6 ]; do
    i=0
    until curl -fsS "$PBASE/sessions/k$n" | grep -q '"state": "done"'; do
        i=$((i + 1))
        if [ "$i" -gt 300 ]; then
            echo "session k$n never finished:" >&2
            curl -fsS "$PBASE/sessions/k$n" >&2 || true
            exit 1
        fi
        sleep 0.2
    done
    n=$((n + 1))
done

echo "== checking failover accounting and the p99 bound"
curl -fsS "$PBASE/fleet/metrics" | grep -q '"controlplane.failovers": [1-9]' || {
    echo "two instance deaths produced no recorded failovers:" >&2
    curl -fsS "$PBASE/fleet/metrics" >&2 || true
    exit 1
}
P99=$(curl -fsS "$PBASE/fleet/instances" | sed -n 's/.*"p99_ns": \([0-9]*\).*/\1/p' | head -n 1)
[ -n "$P99" ] || { echo "no proxy p99 in /fleet/instances" >&2; exit 1; }
# Bucketed quantile: anything at or under the 3s ceiling passes; the
# 10s+ tail means requests stalled across the failovers.
if [ "$P99" -gt 3000000000 ]; then
    echo "proxy p99 ${P99}ns exceeds the 3s bucket" >&2
    exit 1
fi

echo "== scale-to-zero leg: drain the survivors, boot an idle-parking instance"
curl -fsS -X POST "$PBASE/fleet/drain/c" >/dev/null 2>&1 || true
kill "$PID_c" 2>/dev/null || true
kill "$PID_d" 2>/dev/null || true
# A fresh store isolates this leg: on the shared one, e would adopt the
# orphaned duplicates that failover resubmission left behind (persisted
# when d drained) and the parked count would not be exact.
start_instance e 18105 -store "$WORK/store-e" -idle-suspend 30ms
EBASE="http://127.0.0.1:18105"
i=0
until curl -fsS "$EBASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -gt 150 ] || { sleep 0.2; continue; }
    echo "instance e did not become healthy" >&2
    exit 1
done
# Wait until e is the only accepting instance, so the picker must route
# the scale-to-zero sessions onto it.
i=0
until curl -fsS "$PBASE/healthz" | grep -q '"accepting": 1'; do
    i=$((i + 1))
    if [ "$i" -gt 150 ]; then
        echo "fleet never settled to one accepting instance:" >&2
        curl -fsS "$PBASE/fleet/instances" >&2 || true
        exit 1
    fi
    sleep 0.2
done

echo "== submitting sessions that nobody waits on"
for k in z1 z2; do
    curl -fsS "$PBASE/query" -d "{\"tpch\":21,\"priority\":\"batch\",\"session\":\"$k\"}" |
        grep -q '"instance": "e"' || { echo "session $k not routed to e" >&2; exit 1; }
done

echo "== instance e parks both sessions (zero live executions)"
i=0
until curl -fsS "$EBASE/healthz" |
    tr -d '\n ' | grep -q '"running":0,"queued":0,"suspended":0,"parked":2'; do
    i=$((i + 1))
    if [ "$i" -gt 300 ]; then
        echo "instance e never scaled to zero:" >&2
        curl -fsS "$EBASE/healthz" >&2 || true
        exit 1
    fi
    sleep 0.1
done
curl -fsS "$EBASE/metrics" | grep -q '"server.idle_suspended": [1-9]' || {
    echo "no idle suspensions recorded on instance e" >&2
    exit 1
}

echo "== the next proxy request wakes each session to completion"
for k in z1 z2; do
    i=0
    until curl -fsS "$PBASE/sessions/$k" | grep -q '"state": "done"'; do
        i=$((i + 1))
        if [ "$i" -gt 300 ]; then
            echo "parked session $k never woke:" >&2
            curl -fsS "$PBASE/sessions/$k" >&2 || true
            exit 1
        fi
        sleep 0.2
    done
done
curl -fsS "$EBASE/metrics" | grep -q '"server.idle_woken": [1-9]' || {
    echo "no idle wakes recorded on instance e" >&2
    exit 1
}
curl -fsS "$PBASE/fleet/metrics" | grep -q '"controlplane.wake_requests": [1-9]' || {
    echo "proxy recorded no wake requests" >&2
    exit 1
}

echo "== chaos leg: partition-and-heal through -chaos-plan"
# A second proxy armed with a deterministic fault plan: the first 6
# query-path deliveries to instance f are dropped on the floor. Health
# probes are untouched, so f must stay alive the whole time — the
# partition trips f's circuit breaker, never a death/failover.
P2PORT=18106
P2BASE="http://127.0.0.1:$P2PORT"
FPORT=18107
"$PROXY" -addr "127.0.0.1:$P2PORT" -health-interval 50ms -dead-after 3 \
    -retry-budget 3 -backoff-base 5ms -backoff-max 50ms \
    -breaker-threshold 3 -breaker-cooldown 500ms \
    -chaos-plan "drop:link=127.0.0.1:$FPORT,op=/query,count=6" &
PROXY2_PID=$!
PIDS="$PIDS $PROXY2_PID"
i=0
until curl -fsS "$P2BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -gt 100 ] || { sleep 0.2; continue; }
    echo "chaos proxy did not become healthy" >&2
    exit 1
done
"$SERVE" -addr "127.0.0.1:$FPORT" -sf "$SF" -workers 1 -slots 1 \
    -ckdir "$WORK/ckpt-f" -store "$WORK/store-f" -instance f \
    -control "$P2BASE" -advertise "http://127.0.0.1:$FPORT" &
PIDS="$PIDS $!"
# Wait for "accepting", not just "alive": registration marks an instance
# alive immediately, but the picker routes only once a probe has filled
# its status — a submit in that window would 503 without ever touching
# the partitioned link.
i=0
until curl -fsS "$P2BASE/fleet/instances" | grep -q '"status": "accepting"'; do
    i=$((i + 1))
    if [ "$i" -gt 150 ]; then
        echo "instance f never became accepting on the chaos proxy" >&2
        exit 1
    fi
    sleep 0.2
done

echo "== submits fail fast while the query path is partitioned"
# Each submit burns one retry budget (3 dropped attempts) and must come
# back as a clean error, not a hang: the breaker opens at the threshold
# and the proxy answers 503 with no accepting instance.
CODE=$(curl -s -o /dev/null -w '%{http_code}' --max-time 20 \
    "$P2BASE/query" -d '{"tpch":6,"priority":"batch","session":"pz"}')
if [ "$CODE" = "200" ]; then
    echo "partitioned submit unexpectedly succeeded" >&2
    exit 1
fi
curl -fsS "$P2BASE/fleet/metrics" | grep -q '"faultnet.dropped": [1-9]' || {
    echo "chaos plan recorded no dropped deliveries:" >&2
    curl -fsS "$P2BASE/fleet/metrics" >&2 || true
    exit 1
}
curl -fsS "$P2BASE/fleet/metrics" | grep -q '"controlplane.breaker.opened": [1-9]' || {
    echo "partition never tripped the circuit breaker" >&2
    exit 1
}
if curl -fsS "$P2BASE/fleet/metrics" | grep -q '"controlplane.deaths": [1-9]'; then
    echo "query-path partition caused a spurious instance death" >&2
    curl -fsS "$P2BASE/fleet/instances" >&2 || true
    exit 1
fi

echo "== the partition heals: breaker re-closes and the same key completes"
# Re-submitting burns through the drop window; once it is exhausted and
# the cooled-down breaker re-closes off a health probe, the submit lands.
i=0
until [ "$(curl -s -o /dev/null -w '%{http_code}' --max-time 20 \
    "$P2BASE/query" -d '{"tpch":6,"priority":"batch","session":"pz"}')" = "200" ]; do
    i=$((i + 1))
    if [ "$i" -gt 30 ]; then
        echo "submit never succeeded after the partition healed:" >&2
        curl -fsS "$P2BASE/fleet/instances" >&2 || true
        exit 1
    fi
    sleep 1
done
i=0
until curl -fsS "$P2BASE/sessions/pz" | grep -q '"state": "done"'; do
    i=$((i + 1))
    if [ "$i" -gt 300 ]; then
        echo "session pz never finished after heal:" >&2
        curl -fsS "$P2BASE/sessions/pz" >&2 || true
        exit 1
    fi
    sleep 0.2
done
curl -fsS "$P2BASE/fleet/metrics" | grep -q '"controlplane.breaker.closed": [1-9]' || {
    echo "breaker never re-closed after the heal" >&2
    exit 1
}

echo "proxy-smoke OK"
