#!/bin/sh
# bench_json.sh — run the engine micro-benchmarks, the TPC-H per-query
# benchmarks, the checkpoint/blobstore persistence benchmarks, and the
# suspension-strategy benchmarks (lineage seal/replay), and emit a
# machine-readable BENCH_engine.json: ns/op, B/op and allocs/op per
# benchmark, plus per-query wall times. CI runs this with the
# default single iteration as a smoke test (and archives the JSON as an
# artifact); pass BENCHTIME=5x or similar for a real measurement.
# scripts/bench_compare.sh diffs two of these JSONs and gates regressions.
#
# Usage: sh scripts/bench_json.sh [output.json]
set -eu

OUT=${1:-BENCH_engine.json}
BENCHTIME=${BENCHTIME:-1x}
# On a small (single-core) container, a long benchmark run picks up GC
# and scheduling debris from its neighbors; BENCH_COUNT>1 repeats every
# engine/tpch/checkpoint/blobstore/strategy benchmark and keeps the
# fastest run per name — the same min-of-counts the controlplane section
# has always used. CI smoke stays at 1; use BENCH_COUNT=3 with
# BENCHTIME=5x when recording a committed baseline.
BENCH_COUNT=${BENCH_COUNT:-1}
# The strategy benchmarks time a single fsync-bounded seal, so one slow
# fsync outlier can swing the lineage acceptance ratio by an order of
# magnitude; always take at least 20 samples regardless of BENCHTIME.
STRAT_BENCHTIME=${STRAT_BENCHTIME:-20x}
# The controlplane proxy benchmarks pay a real loopback HTTP round trip
# per op, so single iterations are all noise; always take a few hundred
# samples, several times, and keep the best run (the gate reads the
# paired overhead-pct metric, which machine-load drift cannot inflate
# in the min-of-counts).
CP_BENCHTIME=${CP_BENCHTIME:-200x}
CP_COUNT=${CP_COUNT:-3}
# The fold benchmarks serve whole TPC-H bursts per iteration, so single
# iterations carry multi-millisecond scheduling noise; take a few
# iterations, several times, and keep the best run per name. The gate
# reads the paired fold-speedup / single-overhead-pct metrics, which are
# ratios of interleaved runs — machine-load drift largely cancels, and
# min-of-counts removes what remains.
FOLD_BENCHTIME=${FOLD_BENCHTIME:-3x}
FOLD_COUNT=${FOLD_COUNT:-3}
GO=${GO:-go}

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

$GO test ./internal/engine -run '^$' -bench . -benchmem -benchtime "$BENCHTIME" -count "$BENCH_COUNT" \
    | tee "$tmp/engine.txt"
$GO test ./internal/tpch -run '^$' -bench 'BenchmarkTPCH/' -benchmem -benchtime "$BENCHTIME" -count "$BENCH_COUNT" \
    | tee "$tmp/tpch.txt"
$GO test ./internal/checkpoint -run '^$' -bench . -benchmem -benchtime "$BENCHTIME" -count "$BENCH_COUNT" \
    | tee "$tmp/checkpoint.txt"
$GO test ./internal/blobstore -run '^$' -bench . -benchmem -benchtime "$BENCHTIME" -count "$BENCH_COUNT" \
    | tee "$tmp/blobstore.txt"
$GO test ./internal/strategy -run '^$' -bench 'Lineage' -benchmem -benchtime "$STRAT_BENCHTIME" -count "$BENCH_COUNT" \
    | tee "$tmp/strategy.txt"
$GO test ./internal/controlplane -run '^$' -bench 'BenchmarkProxy' -benchmem \
    -benchtime "$CP_BENCHTIME" -count "$CP_COUNT" \
    | tee "$tmp/controlplane.txt"
$GO test ./internal/server -run '^$' -bench 'BenchmarkFold' \
    -benchtime "$FOLD_BENCHTIME" -count "$FOLD_COUNT" \
    | tee "$tmp/fold.txt"

awk -v benchtime="$BENCHTIME" -v enginefile="$tmp/engine.txt" -v tpchfile="$tmp/tpch.txt" \
    -v ckptfile="$tmp/checkpoint.txt" -v blobfile="$tmp/blobstore.txt" \
    -v stratfile="$tmp/strategy.txt" -v cpfile="$tmp/controlplane.txt" \
    -v foldfile="$tmp/fold.txt" '
# emit_bench keeps the fastest run per benchmark name when -count
# repeats them (min-of-counts; B/op and allocs/op ride along from the
# fastest run — allocation counts are deterministic across counts).
function emit_bench(file, label,    line, n, parts, name, i, nn, names, ns, by, al, hasmem) {
    nn = 0
    while ((getline line < file) > 0) {
        if (line !~ /^Benchmark/) continue
        n = split(line, parts, /[ \t]+/)
        # parts: name iters ns "ns/op" [bytes "B/op" allocs "allocs/op"]
        name = parts[1]
        sub(/^Benchmark/, "", name)
        sub(/-[0-9]+$/, "", name)      # strip GOMAXPROCS suffix
        if (label == "tpch") sub(/^TPCH\//, "", name)
        if (!(name in ns)) { names[++nn] = name; ns[name] = -1 }
        if (ns[name] >= 0 && parts[3] + 0 >= ns[name]) continue
        ns[name] = parts[3] + 0
        if (n >= 8 && parts[6] == "B/op") {
            by[name] = parts[5] + 0; al[name] = parts[7] + 0; hasmem[name] = 1
        }
    }
    close(file)
    printf "  \"%s\": [", label
    for (i = 1; i <= nn; i++) {
        name = names[i]
        if (i > 1) printf ","
        printf "\n    {\"name\": \"%s\", \"ns_per_op\": %g", name, ns[name]
        if (name in hasmem)
            printf ", \"bytes_per_op\": %g, \"allocs_per_op\": %g", by[name], al[name]
        printf "}"
    }
    printf "\n  ]"
}
# emit_cp parses the controlplane run, which differs from the others in
# two ways: -count repeats every benchmark (we keep the fastest run per
# name — min-of-counts is robust against machine-load drift), and the
# paired ProxyOverhead benchmark carries a custom overhead-pct metric,
# so units are located by scanning value/unit pairs, not by position.
function emit_cp(file, label,    line, n, parts, name, i, first, nn, names, ns, ov, hasov) {
    nn = 0
    while ((getline line < file) > 0) {
        if (line !~ /^Benchmark/) continue
        n = split(line, parts, /[ \t]+/)
        name = parts[1]
        sub(/^Benchmark/, "", name)
        sub(/-[0-9]+$/, "", name)
        if (!(name in ns)) { names[++nn] = name; ns[name] = -1 }
        for (i = 3; i < n; i += 2) {
            if (parts[i + 1] == "ns/op" && (ns[name] < 0 || parts[i] + 0 < ns[name]))
                ns[name] = parts[i] + 0
            if (parts[i + 1] == "overhead-pct" && (!(name in hasov) || parts[i] + 0 < ov[name])) {
                ov[name] = parts[i] + 0
                hasov[name] = 1
            }
        }
    }
    close(file)
    printf "  \"%s\": [", label
    for (i = 1; i <= nn; i++) {
        name = names[i]
        if (i > 1) printf ","
        printf "\n    {\"name\": \"%s\", \"ns_per_op\": %g", name, ns[name]
        if (name in hasov) printf ", \"overhead_pct\": %g", ov[name]
        printf "}"
    }
    printf "\n  ]"
}
# emit_fold parses the shared-execution run. Like emit_cp it scans
# value/unit pairs for custom metrics; per name it keeps the fastest run
# by ns/op, the BEST fold-speedup (max — noise only loses sharing), and
# the best single-overhead-pct (min — noise only inflates overhead).
function emit_fold(file, label,    line, n, parts, name, i, nn, names, ns, sp, ov, hassp, hasov) {
    nn = 0
    while ((getline line < file) > 0) {
        if (line !~ /^Benchmark/) continue
        n = split(line, parts, /[ \t]+/)
        name = parts[1]
        sub(/^Benchmark/, "", name)
        sub(/-[0-9]+$/, "", name)
        if (!(name in ns)) { names[++nn] = name; ns[name] = -1 }
        for (i = 3; i < n; i += 2) {
            if (parts[i + 1] == "ns/op" && (ns[name] < 0 || parts[i] + 0 < ns[name]))
                ns[name] = parts[i] + 0
            if (parts[i + 1] == "fold-speedup" && (!(name in hassp) || parts[i] + 0 > sp[name])) {
                sp[name] = parts[i] + 0
                hassp[name] = 1
            }
            if (parts[i + 1] == "single-overhead-pct" && (!(name in hasov) || parts[i] + 0 < ov[name])) {
                ov[name] = parts[i] + 0
                hasov[name] = 1
            }
        }
    }
    close(file)
    printf "  \"%s\": [", label
    for (i = 1; i <= nn; i++) {
        name = names[i]
        if (i > 1) printf ","
        printf "\n    {\"name\": \"%s\", \"ns_per_op\": %g", name, ns[name]
        if (name in hassp) printf ", \"fold_speedup\": %g", sp[name]
        if (name in hasov) printf ", \"single_overhead_pct\": %g", ov[name]
        printf "}"
    }
    printf "\n  ]"
}
BEGIN {
    goos = ""; goarch = ""; cpu = ""
    while ((getline line < enginefile) > 0) {
        if (line ~ /^goos: /)   { goos = substr(line, 7) }
        if (line ~ /^goarch: /) { goarch = substr(line, 9) }
        if (line ~ /^cpu: /)    { cpu = substr(line, 6) }
    }
    close(enginefile)
    printf "{\n"
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"goos\": \"%s\",\n", goos
    printf "  \"goarch\": \"%s\",\n", goarch
    printf "  \"cpu\": \"%s\",\n", cpu
    emit_bench(enginefile, "engine");     printf ",\n"
    emit_bench(tpchfile, "tpch");         printf ",\n"
    emit_bench(ckptfile, "checkpoint");   printf ",\n"
    emit_bench(blobfile, "blobstore");    printf ",\n"
    emit_bench(stratfile, "strategy");    printf ",\n"
    emit_cp(cpfile, "controlplane");      printf ",\n"
    emit_fold(foldfile, "fold");          printf "\n"
    printf "}\n"
}' > "$OUT"

echo "wrote $OUT"
