#!/bin/sh
# serve-smoke: boot riveter-serve on a tiny TPC-H dataset, submit
# concurrent queries over HTTP (a long batch query plus interactive
# shorts), and check the responses and serving metrics. Then restart the
# server mid-load: SIGTERM with batch work in flight, boot a fresh
# process on the same checkpoint dir, and check the same session ids
# resume to completion. Finally, migrate across instances: instance A
# suspends a burst into a shared blob store on SIGTERM, and instance B
# (a different -instance id sharing only -store) claims and finishes the
# same sessions. Exercises the whole serving stack — admission, priority
# scheduling, preemption, graceful shutdown, crash-safe state restore,
# cross-instance migration, and the HTTP API — in a few seconds.
# Requires curl.
set -eu

PORT="${PORT:-18091}"
BASE="http://127.0.0.1:$PORT"
WORK="$(mktemp -d)"
BIN="$WORK/riveter-serve"

cleanup() {
    [ -n "${PID:-}" ] && kill "$PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "== building riveter-serve"
go build -o "$BIN" ./cmd/riveter-serve

echo "== booting on $BASE (SF 0.002)"
"$BIN" -addr "127.0.0.1:$PORT" -sf 0.002 -slots 1 -ckdir "$WORK/ckpt" &
PID=$!

i=0
until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "server did not become healthy" >&2
        exit 1
    fi
    sleep 0.2
done

echo "== submitting long batch query (async)"
LONG_ID=$(curl -fsS "$BASE/query" -d '{"tpch":21,"priority":"batch"}' |
    sed -n 's/.*"id": "\(s-[0-9]*\)".*/\1/p' | head -n 1)
[ -n "$LONG_ID" ] || { echo "no session id in submit response" >&2; exit 1; }

echo "== submitting interactive shorts (wait=true, concurrent)"
n=0
CURL_PIDS=""
for q in "SELECT count(*) AS n FROM region" \
         "SELECT count(*) AS n FROM nation" \
         "SELECT count(*) AS n FROM orders"; do
    curl -fsS "$BASE/query" -d "{\"sql\":\"$q\",\"priority\":\"interactive\",\"wait\":true}" \
        >"$WORK/short-$n.json" &
    CURL_PIDS="$CURL_PIDS $!"
    n=$((n + 1))
done
for p in $CURL_PIDS; do
    wait "$p" || { echo "short query request failed" >&2; exit 1; }
done
for f in "$WORK"/short-*.json; do
    grep -q '"state": "done"' "$f" || { echo "short query not done: $(cat "$f")" >&2; exit 1; }
done

echo "== waiting for the long query to finish"
i=0
until curl -fsS "$BASE/sessions/$LONG_ID" | grep -q '"state": "done"'; do
    i=$((i + 1))
    if [ "$i" -gt 300 ]; then
        echo "long query never finished:" >&2
        curl -fsS "$BASE/sessions/$LONG_ID" >&2 || true
        exit 1
    fi
    sleep 0.2
done

echo "== checking serving metrics"
curl -fsS "$BASE/metrics" | grep -q '"server.sessions.done": 4' || {
    echo "expected 4 done sessions in metrics:" >&2
    curl -fsS "$BASE/metrics?format=text" >&2 || true
    exit 1
}
curl -fsS "$BASE/sessions" >/dev/null
curl -fsS "$BASE/traces" >/dev/null

stop_server() { # $1 = signal
    kill "-$1" "$PID"
    i=0
    while kill -0 "$PID" 2>/dev/null; do
        i=$((i + 1))
        if [ "$i" -gt 200 ]; then
            echo "server did not shut down on SIG$1" >&2
            exit 1
        fi
        sleep 0.2
    done
    wait "$PID" 2>/dev/null || true
    PID=""
}

wait_healthy() { # $1 = label
    i=0
    until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 150 ]; then
            echo "$1 server did not become healthy" >&2
            exit 1
        fi
        sleep 0.2
    done
}

echo "== restart mid-load: booting a slower instance (SF 0.02, 1 worker)"
stop_server TERM
CKDIR2="$WORK/ckpt2"
"$BIN" -addr "127.0.0.1:$PORT" -sf 0.02 -workers 1 -slots 1 -ckdir "$CKDIR2" &
PID=$!
wait_healthy "mid-load"

echo "== submitting a burst of long batch queries"
MID_IDS=""
n=0
while [ "$n" -lt 4 ]; do
    SID=$(curl -fsS "$BASE/query" -d '{"tpch":21,"priority":"batch"}' |
        sed -n 's/.*"id": "\(s-[0-9]*\)".*/\1/p' | head -n 1)
    [ -n "$SID" ] || { echo "no session id in burst submit response" >&2; exit 1; }
    MID_IDS="$MID_IDS $SID"
    n=$((n + 1))
done

echo "== SIGTERM with the burst in flight"
stop_server TERM
[ -f "$CKDIR2/riveter-serve.state.json" ] ||
    { echo "graceful shutdown left no state manifest" >&2; exit 1; }

echo "== restarting on the same checkpoint dir"
"$BIN" -addr "127.0.0.1:$PORT" -sf 0.02 -workers 1 -slots 1 -ckdir "$CKDIR2" &
PID=$!
wait_healthy "restarted"

echo "== interrupted sessions resume to completion"
for SID in $MID_IDS; do
    i=0
    until curl -fsS "$BASE/sessions/$SID" | grep -q '"state": "done"'; do
        i=$((i + 1))
        if [ "$i" -gt 300 ]; then
            echo "session $SID never finished after restart:" >&2
            curl -fsS "$BASE/sessions/$SID" >&2 || true
            exit 1
        fi
        sleep 0.2
    done
done

echo "== cross-instance migration: instance A with a shared blob store"
stop_server TERM
STORE="$WORK/store"
"$BIN" -addr "127.0.0.1:$PORT" -sf 0.02 -workers 1 -slots 1 \
    -ckdir "$WORK/ckpt-a" -store "$STORE" -instance a &
PID=$!
wait_healthy "instance A"

echo "== submitting a burst of long batch queries to instance A"
MIG_IDS=""
n=0
while [ "$n" -lt 3 ]; do
    SID=$(curl -fsS "$BASE/query" -d '{"tpch":21,"priority":"batch"}' |
        sed -n 's/.*"id": "\(s-[0-9]*\)".*/\1/p' | head -n 1)
    [ -n "$SID" ] || { echo "no session id in migration submit response" >&2; exit 1; }
    MIG_IDS="$MIG_IDS $SID"
    n=$((n + 1))
done

echo "== SIGTERM instance A mid-load: suspend into the shared store"
stop_server TERM
[ -n "$(ls -A "$STORE/chunks" 2>/dev/null)" ] ||
    { echo "instance A uploaded nothing to the shared store" >&2; exit 1; }

echo "== booting instance B on the same store (different instance id)"
"$BIN" -addr "127.0.0.1:$PORT" -sf 0.02 -workers 1 -slots 1 \
    -ckdir "$WORK/ckpt-b" -store "$STORE" -instance b &
PID=$!
wait_healthy "instance B"

echo "== instance A's sessions complete on instance B"
for SID in $MIG_IDS; do
    i=0
    until curl -fsS "$BASE/sessions/$SID" | grep -q '"state": "done"'; do
        i=$((i + 1))
        if [ "$i" -gt 300 ]; then
            echo "session $SID never finished on instance B:" >&2
            curl -fsS "$BASE/sessions/$SID" >&2 || true
            exit 1
        fi
        sleep 0.2
    done
done
curl -fsS "$BASE/metrics" | grep -q '"server.migrated": [1-9]' || {
    echo "instance B adopted no foreign sessions:" >&2
    curl -fsS "$BASE/metrics?format=text" >&2 || true
    exit 1
}

echo "serve-smoke OK"
