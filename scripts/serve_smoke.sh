#!/bin/sh
# serve-smoke: boot riveter-serve on a tiny TPC-H dataset, submit
# concurrent queries over HTTP (a long batch query plus interactive
# shorts), and check the responses and serving metrics. Exercises the
# whole serving stack — admission, priority scheduling, preemption, and
# the HTTP API — in a few seconds. Requires curl.
set -eu

PORT="${PORT:-18091}"
BASE="http://127.0.0.1:$PORT"
WORK="$(mktemp -d)"
BIN="$WORK/riveter-serve"

cleanup() {
    [ -n "${PID:-}" ] && kill "$PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "== building riveter-serve"
go build -o "$BIN" ./cmd/riveter-serve

echo "== booting on $BASE (SF 0.002)"
"$BIN" -addr "127.0.0.1:$PORT" -sf 0.002 -slots 1 -ckdir "$WORK/ckpt" &
PID=$!

i=0
until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "server did not become healthy" >&2
        exit 1
    fi
    sleep 0.2
done

echo "== submitting long batch query (async)"
LONG_ID=$(curl -fsS "$BASE/query" -d '{"tpch":21,"priority":"batch"}' |
    sed -n 's/.*"id": "\(s-[0-9]*\)".*/\1/p' | head -n 1)
[ -n "$LONG_ID" ] || { echo "no session id in submit response" >&2; exit 1; }

echo "== submitting interactive shorts (wait=true, concurrent)"
n=0
CURL_PIDS=""
for q in "SELECT count(*) AS n FROM region" \
         "SELECT count(*) AS n FROM nation" \
         "SELECT count(*) AS n FROM orders"; do
    curl -fsS "$BASE/query" -d "{\"sql\":\"$q\",\"priority\":\"interactive\",\"wait\":true}" \
        >"$WORK/short-$n.json" &
    CURL_PIDS="$CURL_PIDS $!"
    n=$((n + 1))
done
for p in $CURL_PIDS; do
    wait "$p" || { echo "short query request failed" >&2; exit 1; }
done
for f in "$WORK"/short-*.json; do
    grep -q '"state": "done"' "$f" || { echo "short query not done: $(cat "$f")" >&2; exit 1; }
done

echo "== waiting for the long query to finish"
i=0
until curl -fsS "$BASE/sessions/$LONG_ID" | grep -q '"state": "done"'; do
    i=$((i + 1))
    if [ "$i" -gt 300 ]; then
        echo "long query never finished:" >&2
        curl -fsS "$BASE/sessions/$LONG_ID" >&2 || true
        exit 1
    fi
    sleep 0.2
done

echo "== checking serving metrics"
curl -fsS "$BASE/metrics" | grep -q '"server.sessions.done": 4' || {
    echo "expected 4 done sessions in metrics:" >&2
    curl -fsS "$BASE/metrics?format=text" >&2 || true
    exit 1
}
curl -fsS "$BASE/sessions" >/dev/null
curl -fsS "$BASE/traces" >/dev/null

echo "serve-smoke OK"
