package riveter

import (
	"io"
	"os"
	"sync"
	"testing"

	"github.com/riveterdb/riveter/internal/bench"
)

// The benchmarks below regenerate the paper's evaluation artifacts — one
// benchmark per table and figure of §IV (see DESIGN.md's experiment index).
// They run at a reduced scale so `go test -bench=.` completes in minutes;
// cmd/riveter-bench runs the same experiments at configurable scale and
// prints the full tables.
//
// Reported metric: wall time of regenerating the artifact once.

var (
	suiteOnce sync.Once
	suite     *bench.Suite
	suiteErr  error
)

func benchSuite(b *testing.B) *bench.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		dir, err := os.MkdirTemp("", "riveter-bench-*")
		if err != nil {
			suiteErr = err
			return
		}
		suite, suiteErr = bench.NewSuite(bench.Config{
			// 1:5:10 ratio, mirroring the paper's SF-10/50/100.
			SFs:           []float64{0.002, 0.01, 0.02},
			Workers:       4,
			Runs:          2,
			Queries:       []int{1, 3, 6, 12, 17, 21},
			CheckpointDir: dir,
			Seed:          1,
			Out:           io.Discard,
			Quiet:         true,
		})
	})
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return suite
}

func runExperiment(b *testing.B, id string) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Run(id); err != nil {
			b.Fatalf("experiment %s: %v", id, err)
		}
	}
}

// BenchmarkTable2QueryCharacteristics regenerates Table II: core operators
// and table counts of the highlighted queries.
func BenchmarkTable2QueryCharacteristics(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkFig6ProcessLevelSize regenerates Fig. 6: process-level persisted
// image sizes at ~50% of execution across scale factors.
func BenchmarkFig6ProcessLevelSize(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7ProcessLevelProgression regenerates Fig. 7: process-level
// image sizes at 30/60/90% of execution.
func BenchmarkFig7ProcessLevelProgression(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8PipelineLevelSize regenerates Fig. 8: pipeline-level
// persisted state sizes at ~50% of execution.
func BenchmarkFig8PipelineLevelSize(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9SuspensionLag regenerates Fig. 9: the lag between a
// suspension request and the pipeline-level suspension starting.
func BenchmarkFig9SuspensionLag(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig10StrategyOverheads regenerates Fig. 10: forced-strategy
// overhead box statistics under certain termination.
func BenchmarkFig10StrategyOverheads(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFig11SelectionSuccess regenerates Fig. 11: the adaptive
// selection's success rate against the best forced strategy.
func BenchmarkFig11SelectionSuccess(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkTable3AdaptiveScenarios regenerates Table III: selected strategy
// and execution time with suspension for the paper's four scenarios.
func BenchmarkTable3AdaptiveScenarios(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkTable4EstimatorAccuracy regenerates Table IV: regression-based
// vs optimizer-based process-image estimates against ground truth.
func BenchmarkTable4EstimatorAccuracy(b *testing.B) { runExperiment(b, "table4") }

// BenchmarkTable5CostModelRuntime regenerates Table V: the cost model's
// running time against overall execution time.
func BenchmarkTable5CostModelRuntime(b *testing.B) { runExperiment(b, "table5") }

// BenchmarkFig12OptimizerMisselection regenerates Fig. 12: Q17's strategy
// selection under optimizer-based estimation and the terminations its
// deferred suspension causes.
func BenchmarkFig12OptimizerMisselection(b *testing.B) { runExperiment(b, "fig12") }
