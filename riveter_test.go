package riveter

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
)

func openTPCH(t testing.TB, sf float64) *DB {
	t.Helper()
	db := Open(WithWorkers(2), WithCheckpointDir(t.TempDir()))
	if err := db.GenerateTPCH(sf); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestOpenAndGenerate(t *testing.T) {
	db := openTPCH(t, 0.005)
	tables := db.Tables()
	if len(tables) != 8 {
		t.Fatalf("tables = %v", tables)
	}
	n, err := db.NumRows("lineitem")
	if err != nil || n == 0 {
		t.Fatalf("lineitem rows = %d, %v", n, err)
	}
	if _, err := db.NumRows("nope"); err == nil {
		t.Error("missing table must error")
	}
	if db.Workers() != 2 {
		t.Error("workers option lost")
	}
}

func TestSQLQuery(t *testing.T) {
	db := openTPCH(t, 0.005)
	res, err := db.Query(context.Background(), `
		SELECT l_returnflag, count(*) AS n, sum(l_extendedprice) AS total
		FROM lineitem
		GROUP BY l_returnflag
		ORDER BY l_returnflag`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 3 {
		t.Fatalf("return flags = %d", res.NumRows())
	}
	if res.String() == "" {
		t.Error("result must render")
	}
	if _, err := db.Query(context.Background(), "SELECT bogus FROM lineitem"); err == nil {
		t.Error("bad SQL must error")
	}
}

func TestPrepareTPCHAndRun(t *testing.T) {
	db := openTPCH(t, 0.005)
	q, err := db.PrepareTPCH(6)
	if err != nil {
		t.Fatal(err)
	}
	if q.Name() != "Q6" || q.Plan() == "" {
		t.Error("query metadata missing")
	}
	res, err := q.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 {
		t.Fatalf("Q6 rows = %d", res.NumRows())
	}
	if _, err := db.PrepareTPCH(99); err == nil {
		t.Error("bad query id must error")
	}
	empty := Open(WithCheckpointDir(t.TempDir()))
	if _, err := empty.PrepareTPCH(1); err == nil {
		t.Error("PrepareTPCH without data must error")
	}
}

func TestSuspendCheckpointResume(t *testing.T) {
	db := openTPCH(t, 0.02)
	q, err := db.PrepareTPCH(3)
	if err != nil {
		t.Fatal(err)
	}
	want, err := q.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	exec, err := q.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := exec.Suspend(PipelineLevel); err != nil {
		t.Fatal(err)
	}
	err = exec.Wait()
	if err == nil {
		t.Skip("query finished before the suspension landed")
	}
	if !errors.Is(err, ErrSuspended) {
		t.Fatalf("Wait = %v", err)
	}
	path := filepath.Join(db.CheckpointDir(), "q3.rvck")
	info, err := exec.Checkpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Kind != "pipeline" || info.TotalBytes <= 0 {
		t.Errorf("checkpoint info = %+v", info)
	}
	read, err := ReadCheckpointInfo(path)
	if err != nil || read.StateBytes != info.StateBytes {
		t.Errorf("manifest roundtrip: %+v, %v", read, err)
	}

	res, err := q.Resume(context.Background(), path)
	if err != nil {
		t.Fatal(err)
	}
	if res.SortedKey() != want.SortedKey() {
		t.Error("resumed result differs from clean run")
	}
}

func TestProcessSuspendResume(t *testing.T) {
	db := openTPCH(t, 0.02)
	q, err := db.PrepareTPCH(1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := q.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	exec, err := q.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	_ = exec.Suspend(ProcessLevel)
	if err := exec.Wait(); !errors.Is(err, ErrSuspended) {
		t.Skipf("no suspension landed: %v", err)
	}
	path := filepath.Join(db.CheckpointDir(), "q1.rvck")
	info, err := exec.Checkpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Kind != "process" {
		t.Errorf("kind = %s", info.Kind)
	}
	res, err := q.Resume(context.Background(), path)
	if err != nil {
		t.Fatal(err)
	}
	if res.SortedKey() != want.SortedKey() {
		t.Error("resumed result differs")
	}
}

func TestSuspendOnCompletedExecution(t *testing.T) {
	db := openTPCH(t, 0.005)
	q, _ := db.PrepareTPCH(6)
	exec, err := q.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := exec.Wait(); err != nil {
		t.Fatal(err)
	}
	if res, err := exec.Result(); err != nil || res.NumRows() != 1 {
		t.Fatalf("result = %v, %v", res, err)
	}
	if _, err := exec.Checkpoint(filepath.Join(db.CheckpointDir(), "x.rvck")); err == nil {
		t.Error("checkpointing a completed execution must fail")
	}
	if err := exec.Suspend(Redo); err == nil {
		t.Error("Suspend(Redo) must be rejected")
	}
}

func TestSaveLoadDir(t *testing.T) {
	db := openTPCH(t, 0.002)
	dir := filepath.Join(t.TempDir(), "data")
	if err := db.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	db2 := Open(WithCheckpointDir(t.TempDir()))
	if err := db2.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	n1, _ := db.NumRows("orders")
	n2, _ := db2.NumRows("orders")
	if n1 != n2 || n1 == 0 {
		t.Fatalf("orders rows %d vs %d", n1, n2)
	}
	res, err := db2.Query(context.Background(), "SELECT count(*) AS n FROM orders")
	if err != nil || res.Row(0)[0].I != n1 {
		t.Fatalf("query over loaded data: %v, %v", res, err)
	}
	if err := db2.LoadDir(t.TempDir()); err == nil {
		t.Error("empty dir must error")
	}
}

func TestAdaptiveAPI(t *testing.T) {
	db := openTPCH(t, 0.02)
	q, err := db.PrepareTPCH(3)
	if err != nil {
		t.Fatal(err)
	}
	a, err := q.NewAdaptive()
	if err != nil {
		t.Fatal(err)
	}
	if a.NormalTime() <= 0 {
		t.Fatal("calibration missing")
	}
	// Window far beyond the query lifetime: completes untouched.
	rep, err := a.Run(Scenario{Probability: 1, WindowStartFrac: 50, WindowEndFrac: 60})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Suspended || rep.Terminated {
		t.Errorf("far-window run should complete clean: %+v", rep)
	}
	// Forced sizing measurement.
	srep, err := a.SuspendAt(ProcessLevel, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if srep.Suspended && srep.PersistedBytes <= 0 {
		t.Error("suspended without bytes")
	}
}
