// Package riveter is an adaptive query suspension and resumption framework
// for cloud-native analytic workloads, reproducing "Riveter: Adaptive Query
// Suspension and Resumption Framework for Cloud Native Databases" (ICDE
// 2024) as a self-contained Go library.
//
// It bundles a vectorized, morsel-driven, push-based pipeline query engine;
// a TPC-H-style workload generator with all 22 benchmark queries; a SQL
// subset; four suspension/resumption strategies (redo, pipeline-level,
// process-level with a CRIU-style image model, and write-ahead lineage
// with near-free suspension); the paper's cost model and
// adaptive strategy-selection algorithm; and the harness that regenerates
// every table and figure of the paper's evaluation.
//
// Quick start:
//
//	db := riveter.Open(riveter.WithWorkers(4))
//	_ = db.GenerateTPCH(0.01)
//	res, _ := db.Query(ctx, "SELECT count(*) FROM lineitem")
//	fmt.Println(res)
//
// Suspension and resumption:
//
//	q, _ := db.PrepareTPCH(21)
//	exec := q.Start(ctx)
//	exec.Suspend(riveter.PipelineLevel)      // suspends at the next breaker
//	if exec.Wait() == riveter.ErrSuspended {
//	    info, _ := exec.Checkpoint("q21.rvck")
//	    ...
//	    res, _ := q.Resume(ctx, "q21.rvck")  // possibly on another node
//	}
package riveter

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"

	"github.com/riveterdb/riveter/internal/blobstore"
	"github.com/riveterdb/riveter/internal/catalog"
	"github.com/riveterdb/riveter/internal/cloud"
	"github.com/riveterdb/riveter/internal/colfile"
	"github.com/riveterdb/riveter/internal/costmodel"
	"github.com/riveterdb/riveter/internal/engine"
	"github.com/riveterdb/riveter/internal/faultfs"
	"github.com/riveterdb/riveter/internal/fold"
	"github.com/riveterdb/riveter/internal/obs"
	"github.com/riveterdb/riveter/internal/strategy"
	"github.com/riveterdb/riveter/internal/tpch"
)

// Strategy identifies a suspension/resumption strategy.
type Strategy = strategy.Kind

// The strategies: the paper's three (§II-A) plus write-ahead lineage.
const (
	// Redo terminates the query and re-runs it from scratch on resume.
	Redo = strategy.Redo
	// PipelineLevel suspends at the completion of the current pipeline and
	// persists the finalized global operator states.
	PipelineLevel = strategy.Pipeline
	// ProcessLevel suspends at any morsel boundary and persists the full
	// execution context (CRIU-style), requiring an identical worker
	// configuration on resume.
	ProcessLevel = strategy.Process
	// LineageLevel suspends by sealing the execution's write-ahead lineage
	// log: the state was already persisted incrementally at every pipeline
	// breaker, so the suspension itself only flushes the log's unsealed
	// tail. Resume replays from the last sealed record. Requires the
	// execution to have been started with Query.StartWithLineage.
	LineageLevel = strategy.Lineage
)

// ErrSuspended is returned by Execution.Wait when the query was suspended
// rather than completed.
var ErrSuspended = engine.ErrSuspended

// DB is a Riveter database instance: an in-memory catalog plus execution
// configuration.
type DB struct {
	cat           *catalog.Catalog
	workers       int
	checkpointDir string
	io            costmodel.IOProfile
	lineage       costmodel.LineageProfile
	tpchSF        float64
	metrics       *obs.Registry
	tracing       bool
	fsys          faultfs.FS
	ckptSeq       atomic.Uint64
	storeCfg      *StoreConfig
	store         *blobstore.Store
	storeErr      error

	// Shared-execution state (WithFold): foldM registers one scan hub per
	// (table, column-set) and rides every base-table scan on it; subplans
	// caches materialized subplan results across sessions; foldProf is the
	// cost model's view of detach/rejoin pricing.
	foldM    *fold.Manager
	subplans *fold.SubplanCache
	foldProf costmodel.FoldProfile

	// live counts in-flight executions across every start/resume path; the
	// fold manager's hubs consult it to skip shared-window maintenance
	// while at most one execution is running.
	live atomic.Int64
}

// Option configures Open.
type Option func(*DB)

// WithWorkers sets the per-pipeline worker count (default 4).
func WithWorkers(n int) Option {
	return func(db *DB) {
		if n > 0 {
			db.workers = n
		}
	}
}

// WithCheckpointDir sets where checkpoints are written (default: a fresh
// temporary directory).
func WithCheckpointDir(dir string) Option {
	return func(db *DB) { db.checkpointDir = dir }
}

// WithFS routes all checkpoint I/O (writes, restores, the calibration
// probe) through the given filesystem. The default is the real OS
// filesystem; tests pass a faultfs.Injector to exercise torn writes,
// ENOSPC, and crash points deterministically.
func WithFS(fs faultfs.FS) Option {
	return func(db *DB) {
		if fs != nil {
			db.fsys = fs
		}
	}
}

// StoreConfig configures a checkpoint blob store: a content-addressed
// chunk store (see internal/blobstore) that checkpoints can be persisted
// into instead of (or alongside) local files. Pointing several instances
// at the same Dir gives them a shared durability tier — the substrate of
// cross-instance query migration.
type StoreConfig struct {
	// Dir is the store's root directory, shared between instances.
	Dir string
	// Net, when non-zero, simulates a remote object store: every store
	// operation pays the profile's round-trip latency, and transfers pay
	// its bandwidth. The cost model is calibrated against this link.
	Net cloud.NetProfile
	// Chunking overrides the content-defined chunker's bounds (zero =
	// 4 KiB / 16 KiB / 64 KiB defaults).
	Chunking blobstore.ChunkParams
}

// WithBlobStore attaches a checkpoint blob store. Open initializes the
// backend, threads checkpoint I/O faults through the DB's filesystem
// (WithFS), and calibrates the cost model's upload terms against the
// configured link, so Algorithm 1 prices suspensions at store speed.
func WithBlobStore(cfg StoreConfig) Option {
	return func(db *DB) { db.storeCfg = &cfg }
}

// WithFold enables shared execution: every base-table scan rides a shared
// per-(table, column-set) morsel stream (one hub per group, any number of
// concurrent sessions), and completed executions publish their
// materialized subplan results into a fingerprint-keyed cache that later
// identical subplans fold onto. Results are byte-identical with and
// without folding; suspension keeps working unchanged (a suspended rider's
// cursor is already in the checkpoint — on resume it rejoins its hub
// mid-stream, catching up the morsels it missed with direct reads, or
// falls back to a private scan when resumed on a non-folding instance).
func WithFold() Option {
	return func(db *DB) { db.foldProf = costmodel.DefaultFoldProfile() }
}

// WithTracing enables per-execution traces: executions created by
// Query.Start and adaptive runs record structured events (pipeline
// start/finish, suspension requests and acknowledgements, checkpoint
// persists, restores, strategy decisions) retrievable via
// Execution.Trace and AdaptiveReport.Trace.
func WithTracing() Option {
	return func(db *DB) { db.tracing = true }
}

// Open creates an empty database.
func Open(opts ...Option) *DB {
	db := &DB{
		cat:     catalog.New(),
		workers: 4,
		io:      costmodel.DefaultIOProfile(),
		metrics: obs.NewRegistry(),
		fsys:    faultfs.OS,
	}
	for _, o := range opts {
		o(db)
	}
	if db.checkpointDir == "" {
		if dir, err := os.MkdirTemp("", "riveter-*"); err == nil {
			db.checkpointDir = dir
		} else {
			db.checkpointDir = os.TempDir()
		}
	} else {
		// A configured directory may not exist yet; creating it here keeps
		// every later checkpoint write a plain create-in-directory, so a
		// missing parent can never surface mid-suspension.
		os.MkdirAll(db.checkpointDir, 0o755)
	}
	if prof, err := costmodel.CalibrateIOFS(db.fsys, db.checkpointDir); err == nil {
		db.io = prof
	}
	db.lineage, _ = costmodel.CalibrateLineage(db.fsys, db.checkpointDir)
	if db.storeCfg != nil {
		db.initStore()
	}
	if db.foldProf.Enabled() {
		db.foldM = fold.NewManager(db.metrics, &db.live)
		db.subplans = fold.NewSubplanCache(0, db.metrics)
		db.foldProf.Publish(db.metrics)
	}
	db.io.Publish(db.metrics)
	db.lineage.Publish(db.metrics)
	return db
}

// initStore builds the configured blob store and calibrates the cost
// model's upload terms against its backend — the probe runs through the
// remote wrapper, so a simulated slow link shows up in the measured
// numbers exactly as it will in checkpoint uploads.
func (db *DB) initStore() {
	local, err := blobstore.NewLocal(db.fsys, db.storeCfg.Dir)
	if err != nil {
		db.storeErr = err
		return
	}
	var backend blobstore.Backend = local
	if !db.storeCfg.Net.Zero() {
		backend = blobstore.NewRemote(local, db.storeCfg.Net)
	}
	st, err := blobstore.New(blobstore.Config{
		Backend:  backend,
		Chunking: db.storeCfg.Chunking,
		Metrics:  db.metrics,
	})
	if err != nil {
		db.storeErr = err
		return
	}
	db.store = st
	if prof, err := costmodel.CalibrateStore(db.io, backend); err == nil {
		db.io = prof
	}
}

// BlobStore returns the attached checkpoint store, or an error when none
// was configured (or its initialization failed).
func (db *DB) BlobStore() (*blobstore.Store, error) {
	if db.store == nil {
		if db.storeErr != nil {
			return nil, fmt.Errorf("riveter: blob store: %w", db.storeErr)
		}
		return nil, fmt.Errorf("riveter: no blob store configured (use WithBlobStore)")
	}
	return db.store, nil
}

// IOProfile returns the calibrated I/O profile the cost model uses.
func (db *DB) IOProfile() costmodel.IOProfile { return db.io }

// LineageProfile returns the calibrated lineage-log cost terms (append
// latency, log bandwidth, replay bandwidth) Algorithm 1 prices the
// lineage strategy with.
func (db *DB) LineageProfile() costmodel.LineageProfile { return db.lineage }

// FoldEnabled reports whether shared execution is on (WithFold).
func (db *DB) FoldEnabled() bool { return db.foldM != nil }

// FoldProfile returns the fold cost terms Algorithm 1 prices detached
// riders with (the zero profile when folding is off).
func (db *DB) FoldProfile() costmodel.FoldProfile { return db.foldProf }

// compileOpts assembles the plan-lowering options for one compile.
// Shape-neutral scan sharing applies everywhere folding is on; the
// shape-changing subplan-cache lookup only where the caller says the
// execution can never be checkpointed (restores revalidate pipeline
// counts, so checkpoint shape must not depend on cache state).
func (db *DB) compileOpts(subplanLookup bool) engine.CompileOptions {
	opts := engine.CompileOptions{}
	if db.foldM != nil {
		opts.ScanShare = db.foldM
		if subplanLookup {
			opts.Subplans = db.subplans
		}
	}
	return opts
}

// publishShared records a completed plan's materialized subplan results
// into the cross-session cache.
func (db *DB) publishShared(pp *engine.PhysicalPlan) {
	if db.subplans == nil {
		return
	}
	for _, sh := range pp.Shared {
		db.subplans.Publish(sh.Fingerprint, sh.Sink.Buffer(), sh.Types)
	}
}

// FS returns the filesystem checkpoint I/O goes through.
func (db *DB) FS() faultfs.FS { return db.fsys }

// Workers returns the configured per-pipeline worker count.
func (db *DB) Workers() int { return db.workers }

// Metrics returns the database's metrics registry. Every execution the DB
// creates records into it: engine progress counters, per-pipeline duration
// histograms, per-strategy suspend/resume latencies (the paper's L_s and
// L_r), and checkpoint sizes. Snapshot it at any time; see internal/obs
// for the metric name taxonomy.
func (db *DB) Metrics() *obs.Registry { return db.metrics }

// obsFor builds an execution's observability context; tr may be nil.
func (db *DB) obsFor(tr *obs.Trace) obs.Context {
	return obs.Context{Metrics: db.metrics, Trace: tr}
}

// newTrace returns a fresh trace when tracing is enabled, else nil.
func (db *DB) newTrace(query string) *obs.Trace {
	if !db.tracing {
		return nil
	}
	return obs.NewTrace(query)
}

// CheckpointDir returns the checkpoint directory.
func (db *DB) CheckpointDir() string { return db.checkpointDir }

// NewCheckpointPath allocates a fresh, collision-free checkpoint file path
// under CheckpointDir. Concurrent suspensions from many sessions each get a
// distinct name (a per-DB sequence number plus the process id, so two
// processes sharing one directory cannot clobber each other either). The
// file is not created; the path is meant to be handed straight to
// Execution.Checkpoint.
func (db *DB) NewCheckpointPath(prefix string) string {
	clean := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '-'
		}
	}, prefix)
	if clean == "" {
		clean = "ckpt"
	}
	seq := db.ckptSeq.Add(1)
	return filepath.Join(db.checkpointDir, fmt.Sprintf("%s-%d-%06d.rvck", clean, os.Getpid(), seq))
}

// NewLineagePath allocates a fresh, collision-free lineage-log file path
// under CheckpointDir, following the same naming discipline as
// NewCheckpointPath (.rvlg extension). The file is not created; the path
// is meant to be handed to Query.StartWithLineage.
func (db *DB) NewLineagePath(prefix string) string {
	clean := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '-'
		}
	}, prefix)
	if clean == "" {
		clean = "lineage"
	}
	seq := db.ckptSeq.Add(1)
	return filepath.Join(db.checkpointDir, fmt.Sprintf("%s-%d-%06d.rvlg", clean, os.Getpid(), seq))
}

// GenerateTPCH populates the catalog with a TPC-H-style dataset at the
// given scale factor (SF 1 is the full 6M-lineitem scale).
func (db *DB) GenerateTPCH(sf float64) error {
	cat, err := tpch.Generate(tpch.Config{SF: sf})
	if err != nil {
		return err
	}
	for _, name := range cat.Names() {
		t, err := cat.Table(name)
		if err != nil {
			return err
		}
		if err := db.cat.Add(t); err != nil {
			return fmt.Errorf("riveter: %w", err)
		}
	}
	db.tpchSF = sf
	return nil
}

// Tables lists the catalog's table names.
func (db *DB) Tables() []string { return db.cat.Names() }

// NumRows returns a table's row count.
func (db *DB) NumRows(table string) (int64, error) {
	t, err := db.cat.Table(table)
	if err != nil {
		return 0, err
	}
	return t.NumRows(), nil
}

// SaveDir writes every table to dir as columnar files (one .rvc per table).
func (db *DB) SaveDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, name := range db.cat.Names() {
		t, err := db.cat.Table(name)
		if err != nil {
			return err
		}
		if err := colfile.WriteTable(filepath.Join(dir, name+".rvc"), t); err != nil {
			return err
		}
	}
	return nil
}

// LoadDir loads every .rvc columnar file in dir into the catalog.
func (db *DB) LoadDir(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".rvc" {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return fmt.Errorf("riveter: no .rvc files in %s", dir)
	}
	for _, name := range names {
		t, err := colfile.ReadTable(filepath.Join(dir, name))
		if err != nil {
			return fmt.Errorf("riveter: load %s: %w", name, err)
		}
		if err := db.cat.Add(t); err != nil {
			return err
		}
	}
	return nil
}
