package riveter

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"github.com/riveterdb/riveter/internal/strategy"
)

// The strategy-equivalence property: for every TPC-H query, a run
// interrupted by ANY suspension strategy — lineage seal+replay, pipeline
// checkpoint, process checkpoint — produces a result byte-identical to the
// uninterrupted run. For lineage this includes a second suspension landing
// mid-replay: the replayed execution carries a fresh log and is itself
// suspendable, indefinitely.

// lineageSuspend drives e to a sealed lineage log. The bool reports whether
// a suspension actually landed; when the query finished first, the result
// is verified against want and the log is discarded.
func lineageSuspend(t *testing.T, db *DB, e *Execution, want string) (string, bool) {
	t.Helper()
	if err := e.Suspend(LineageLevel); err != nil {
		t.Fatal(err)
	}
	werr := e.Wait()
	if werr == nil {
		res, err := e.Result()
		if err != nil {
			t.Fatal(err)
		}
		if res.SortedKey() != want {
			t.Fatal("uninterrupted lineage-logged result differs from clean run")
		}
		_ = db.RemoveLineage(e.LineagePath())
		return "", false
	}
	if !errors.Is(werr, ErrSuspended) {
		t.Fatalf("Wait = %v", werr)
	}
	info, err := e.SealLineage()
	if err != nil {
		t.Fatalf("seal: %v", err)
	}
	if info.Seals < 1 || info.LogBytes <= 0 || info.TailBytes > info.LogBytes {
		t.Fatalf("implausible seal info: %+v", info)
	}
	return info.Path, true
}

// checkpointEquivalence interrupts one run at the given level, checkpoints,
// resumes, and compares against the clean result.
func checkpointEquivalence(t *testing.T, db *DB, q *Query, level Strategy, want string) {
	t.Helper()
	ctx := context.Background()
	exec, err := q.Start(ctx)
	if err != nil {
		t.Fatal(err)
	}
	_ = exec.Suspend(level)
	werr := exec.Wait()
	if werr == nil {
		return // finished before the suspension landed; nothing to resume
	}
	if !errors.Is(werr, ErrSuspended) {
		t.Fatalf("Wait = %v", werr)
	}
	path := filepath.Join(db.CheckpointDir(), fmt.Sprintf("eq-%s-%d.rvck", q.Name(), level))
	if _, err := exec.Checkpoint(path); err != nil {
		t.Fatal(err)
	}
	defer db.FS().Remove(path)
	res, err := q.Resume(ctx, path)
	if err != nil {
		t.Fatal(err)
	}
	if res.SortedKey() != want {
		t.Errorf("%s checkpoint resume differs from clean run", strategy.KindName(level))
	}
}

func TestLineageEquivalenceAllTPCH(t *testing.T) {
	db := openTPCH(t, 0.01)
	ctx := context.Background()
	for i := 1; i <= 22; i++ {
		t.Run(fmt.Sprintf("Q%d", i), func(t *testing.T) {
			q, err := db.PrepareTPCH(i)
			if err != nil {
				t.Fatal(err)
			}
			clean, err := q.Run(ctx)
			if err != nil {
				t.Fatal(err)
			}
			want := clean.SortedKey()

			// The lineage round trip, with a second suspension mid-replay.
			e1, err := q.StartWithLineage(ctx, LineageConfig{})
			if err != nil {
				t.Fatal(err)
			}
			time.Sleep(time.Millisecond)
			log1, suspended := lineageSuspend(t, db, e1, want)
			if suspended {
				defer db.RemoveLineage(log1)
				e2, err := q.StartFromLineage(ctx, log1, LineageConfig{})
				if err != nil {
					t.Fatalf("replay start: %v", err)
				}
				log2, again := lineageSuspend(t, db, e2, want)
				if again {
					// Sealed mid-replay: the second log alone must carry the
					// query to the correct result.
					defer db.RemoveLineage(log2)
					res, err := q.ResumeFromLineage(ctx, log2)
					if err != nil {
						t.Fatalf("second replay: %v", err)
					}
					if res.SortedKey() != want {
						t.Error("twice-suspended lineage result differs from clean run")
					}
				}
			}

			// The checkpoint strategies agree too.
			checkpointEquivalence(t, db, q, PipelineLevel, want)
			checkpointEquivalence(t, db, q, ProcessLevel, want)
		})
	}
}
