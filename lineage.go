package riveter

// Public surface of the write-ahead lineage suspension strategy: start a
// query with a lineage log attached, suspend it by sealing the log
// (near-free — only the unsealed tail is flushed), and resume it by
// replaying from the last sealed record. See internal/strategy/lineage.go
// for the log format and DESIGN.md §14 for the design.

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/riveterdb/riveter/internal/engine"
	"github.com/riveterdb/riveter/internal/strategy"
)

// LineageConfig tunes a lineage-logged execution. The zero value is valid:
// a fresh log path under the DB's checkpoint directory, sealing at every
// pipeline breaker, state inline in the log.
type LineageConfig struct {
	// Path is the log file's location; empty allocates one via
	// DB.NewLineagePath.
	Path string
	// SealEvery flushes+fsyncs the log every N breaker-state records
	// (default 1: every breaker is immediately durable). Larger values
	// trade replay window for fewer fsyncs.
	SealEvery int
	// ToStore makes breaker-state snapshots ride the DB's blob store as
	// content-addressed checkpoints, so consecutive snapshots dedup
	// chunk-by-chunk and the log itself stays tiny. Requires WithBlobStore.
	ToStore bool
}

// LineageInfo describes a sealed lineage log — the complete cost of a
// lineage suspension.
type LineageInfo struct {
	// Path is the log file.
	Path string
	// Records, States, and Seals total the log's contents.
	Records, States, Seals int
	// LogBytes is the log's total size; TailBytes is what the seal itself
	// had to flush — the suspension's marginal I/O.
	LogBytes, TailBytes int64
	// SealDuration is the seal's wall time: the lineage strategy's L_s.
	SealDuration time.Duration
}

// StartWithLineage launches the query asynchronously with a write-ahead
// lineage log attached: every morsel boundary appends a progress record
// and every pipeline breaker appends the serialized pipeline-kind state.
// A later Suspend(LineageLevel) + SealLineage then costs only a tail
// flush, regardless of how much state the query built up.
//
// Log-write failures never fail the query — they surface at SealLineage,
// where the caller degrades to a checkpoint strategy (the returned
// Execution still supports Checkpoint and CheckpointDegraded).
func (q *Query) StartWithLineage(ctx context.Context, cfg LineageConfig) (*Execution, error) {
	pp, err := engine.CompileWith(q.node, q.db.cat, q.db.compileOpts(false))
	if err != nil {
		return nil, err
	}
	path := cfg.Path
	if path == "" {
		path = q.db.NewLineagePath(q.name)
	}
	o := q.db.obsFor(q.db.newTrace(q.name))
	lo := strategy.LineageOptions{
		FS:        q.db.fsys,
		SealEvery: cfg.SealEvery,
		Obs:       o,
	}
	if cfg.ToStore {
		st, err := q.db.BlobStore()
		if err != nil {
			return nil, err
		}
		lo.Store = st
		lo.StoreKey = fmt.Sprintf("lineage-%s-%016x", q.name, pp.Fingerprint)
	}
	lin, err := strategy.CreateLineageLog(path, q.name, pp.Fingerprint, q.db.workers, lo)
	if err != nil {
		return nil, err
	}
	ex := engine.NewExecutor(pp, engine.Options{
		Workers:   q.db.workers,
		Live:      &q.db.live,
		Obs:       o,
		OnMorsel:  lin.OnMorsel,
		OnBreaker: lin.OnBreaker,
	})
	e := &Execution{q: q, ex: ex, lin: lin, done: make(chan struct{})}
	go func() {
		defer close(e.done)
		e.res, e.err = e.ex.Run(ctx)
		if e.err == nil {
			// Clean completion: the log is history, not recovery state.
			// Close it without a seal; the caller removes it (or the DB's
			// RemoveLineage does) when done inspecting.
			lin.Close()
		}
	}()
	return e, nil
}

// LineagePath returns the execution's lineage-log path ("" when the
// execution has no lineage log).
func (e *Execution) LineagePath() string {
	if e.lin == nil {
		return ""
	}
	return e.lin.Path()
}

// LineageErr returns the lineage log's sticky write error (nil while the
// log is healthy, or when the execution has no log). A non-nil error means
// a lineage suspension is off the table and the caller should fall back to
// Checkpoint/CheckpointDegraded — the degradation ladder's next rungs.
func (e *Execution) LineageErr() error {
	if e.lin == nil {
		return nil
	}
	return e.lin.Err()
}

// SealLineage completes a lineage suspension: after Wait returned
// ErrSuspended (from Suspend(LineageLevel)), it appends the final seal
// record — carrying the quiesced in-flight cursors — and flushes the log's
// unsealed tail. That tail flush is the entire suspension I/O; the state
// itself was persisted incrementally while the query ran.
func (e *Execution) SealLineage() (*LineageInfo, error) {
	if e.lin == nil {
		return nil, fmt.Errorf("riveter: execution has no lineage log (use Query.StartWithLineage)")
	}
	<-e.done
	if !errors.Is(e.err, ErrSuspended) {
		return nil, fmt.Errorf("riveter: execution is not suspended (err=%v)", e.err)
	}
	res, err := e.lin.Seal(e.ex.Suspended())
	if err != nil {
		return nil, err
	}
	e.lin.Close()
	return &LineageInfo{
		Path:         res.Path,
		Records:      res.Records,
		States:       res.States,
		Seals:        res.Seals,
		LogBytes:     res.LogBytes,
		TailBytes:    res.TailBytes,
		SealDuration: res.Duration,
	}, nil
}

// StartFromLineage replays a sealed lineage log and continues the query
// asynchronously — with a fresh lineage log attached (under cfg, as in
// StartWithLineage), so the resumed execution is first-class: it can be
// lineage-suspended again, repeatedly. The replay loads the last sealed
// breaker state (pipeline-kind, so any worker count works) and re-executes
// only the pipelines that had not finalized by that record; a torn tail
// left by a crash is detected, truncated, and never replayed.
func (q *Query) StartFromLineage(ctx context.Context, path string, cfg LineageConfig) (*Execution, error) {
	pp, err := engine.CompileWith(q.node, q.db.cat, q.db.compileOpts(false))
	if err != nil {
		return nil, err
	}
	o := q.db.obsFor(q.db.newTrace(q.name))
	freshPath := cfg.Path
	if freshPath == "" {
		freshPath = q.db.NewLineagePath(q.name)
	}
	lo := strategy.LineageOptions{
		FS:        q.db.fsys,
		SealEvery: cfg.SealEvery,
		Obs:       o,
	}
	if cfg.ToStore {
		st, err := q.db.BlobStore()
		if err != nil {
			return nil, err
		}
		lo.Store = st
		lo.StoreKey = fmt.Sprintf("lineage-%s-%016x-r", q.name, pp.Fingerprint)
	}
	lin, err := strategy.CreateLineageLog(freshPath, q.name, pp.Fingerprint, q.db.workers, lo)
	if err != nil {
		return nil, err
	}
	ex, _, err := strategy.RestoreLineagePlan(q.db.fsys, pp, path, q.db.store, engine.Options{
		Workers:   q.db.workers,
		Live:      &q.db.live,
		Obs:       o,
		OnMorsel:  lin.OnMorsel,
		OnBreaker: lin.OnBreaker,
	})
	if err != nil {
		lin.Close()
		q.db.fsys.Remove(freshPath)
		return nil, err
	}
	e := &Execution{q: q, ex: ex, lin: lin, done: make(chan struct{})}
	go func() {
		defer close(e.done)
		e.res, e.err = e.ex.Run(ctx)
		if e.err == nil {
			lin.Close()
		}
	}()
	return e, nil
}

// ResumeFromLineage replays a sealed lineage log and runs the query to
// completion — the lineage counterpart of Query.Resume. No new log is
// attached; use StartFromLineage when the resumed run must itself remain
// suspendable.
func (q *Query) ResumeFromLineage(ctx context.Context, path string) (*Result, error) {
	ex, _, err := strategy.RestoreLineage(q.db.fsys, q.db.cat, q.node, path, q.db.store,
		engine.Options{Workers: q.db.workers, Live: &q.db.live, Obs: q.db.obsFor(nil), Compile: q.db.compileOpts(false)})
	if err != nil {
		return nil, err
	}
	return ex.Run(ctx)
}

// VerifyLineage scans a lineage log end to end — header, every record's
// frame and checksum — without touching an executor. A nil error means the
// log has an intact header and a usable record prefix; Torn reports
// whether a crash left a truncated tail (which a replay will ignore).
func (db *DB) VerifyLineage(path string) (*LineageScanInfo, error) {
	scan, err := strategy.VerifyLineage(db.fsys, path)
	if err != nil {
		return nil, err
	}
	return &LineageScanInfo{
		Path:       path,
		Query:      scan.Meta.Query,
		Records:    scan.Records,
		States:     scan.States,
		Seals:      scan.Seals,
		ValidBytes: scan.ValidBytes,
		Torn:       scan.Torn(),
		TornErr:    scan.TornErr,
	}, nil
}

// LineageScanInfo summarizes a scanned lineage log.
type LineageScanInfo struct {
	Path    string
	Query   string
	Records int
	States  int
	Seals   int
	// ValidBytes is the intact prefix length; Torn reports whether bytes
	// beyond it were logically truncated (TornErr says why).
	ValidBytes int64
	Torn       bool
	TornErr    string
}

// RemoveLineage deletes a lineage log and any blob-store checkpoints its
// breaker-state records reference.
func (db *DB) RemoveLineage(path string) error {
	return strategy.RemoveLineage(db.fsys, db.store, path)
}
